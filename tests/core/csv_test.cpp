#include <gtest/gtest.h>

#include <sstream>

#include "core/csv.h"

namespace emdpa {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesFieldsWithCommas) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"x,y", "z"});
  EXPECT_EQ(os.str(), "\"x,y\",z\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"say \"hi\""});
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"two\nlines"});
  EXPECT_EQ(os.str(), "\"two\nlines\"\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row("row", {1.0, 2.5});
  EXPECT_EQ(os.str(), "row,1,2.5\n");
}

TEST(CsvWriter, MultipleRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"h1", "h2"});
  csv.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

}  // namespace
}  // namespace emdpa
