#include <gtest/gtest.h>

#include "core/error.h"
#include "core/table.h"

namespace emdpa {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RejectsMismatchedRowArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, CountsRows) {
  Table t({"n", "time"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"256", "1.0"});
  t.add_row({"512", "4.0"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "v"});
  t.add_row("x", {1.23456}, 2);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_EQ(out.find("1.234"), std::string::npos);
}

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  const std::string out = t.to_string();
  // Header, rule, one row -> 3 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"n", "runtime"});
  t.add_row({"8", "1"});
  t.add_row({"1024", "123"});
  const std::string out = t.to_string();
  // All lines equal length (aligned columns).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

}  // namespace
}  // namespace emdpa
