#include <gtest/gtest.h>

#include "core/op_counter.h"

namespace emdpa {
namespace {

TEST(OpCounter, UnknownNameIsZero) {
  OpCounter c;
  EXPECT_EQ(c.get("nothing"), 0u);
}

TEST(OpCounter, AddDefaultsToOne) {
  OpCounter c;
  c.add("event");
  EXPECT_EQ(c.get("event"), 1u);
}

TEST(OpCounter, AddAccumulates) {
  OpCounter c;
  c.add("flops", 100);
  c.add("flops", 23);
  EXPECT_EQ(c.get("flops"), 123u);
}

TEST(OpCounter, IndependentCounters) {
  OpCounter c;
  c.add("a", 1);
  c.add("b", 2);
  EXPECT_EQ(c.get("a"), 1u);
  EXPECT_EQ(c.get("b"), 2u);
}

TEST(OpCounter, MergeSumsByName) {
  OpCounter a, b;
  a.add("x", 10);
  a.add("y", 1);
  b.add("x", 5);
  b.add("z", 7);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 15u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.get("z"), 7u);
}

TEST(OpCounter, ClearResets) {
  OpCounter c;
  c.add("x", 5);
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.entries().empty());
}

TEST(OpCounter, EntriesSortedByName) {
  OpCounter c;
  c.add("zeta", 1);
  c.add("alpha", 2);
  c.add("mid", 3);
  std::vector<std::string> names;
  for (const auto& [name, count] : c.entries()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(OpCounter, ToStringListsAll) {
  OpCounter c;
  c.add("a", 1);
  c.add("b", 2);
  EXPECT_EQ(c.to_string(), "a = 1\nb = 2\n");
}

}  // namespace
}  // namespace emdpa
