// core/simd_dispatch.h: CPUID gating, ISA parsing, the EMDPA_SIMD
// environment override and the ranked choose_isa() policy.  Everything here
// exercises the selection logic with synthetic compiled-masks — which
// tables the actual binary carries is md-layer territory
// (tests/md/simd_isa_test.cpp).
#include "core/simd_dispatch.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/error.h"

namespace emdpa::simd {
namespace {

/// Sets EMDPA_SIMD for one test, restoring the previous value on exit so
/// tests cannot leak an override into each other (or into a CI matrix leg
/// that set the variable for the whole suite).
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* old = std::getenv("EMDPA_SIMD");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("EMDPA_SIMD", value, 1);
    } else {
      ::unsetenv("EMDPA_SIMD");
    }
  }
  ~ScopedSimdEnv() {
    if (had_value_) {
      ::setenv("EMDPA_SIMD", saved_.c_str(), 1);
    } else {
      ::unsetenv("EMDPA_SIMD");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

constexpr unsigned kAllIsas =
    isa_bit(SimdType::kScalar) | isa_bit(SimdType::kSse2) |
    isa_bit(SimdType::kAvx2) | isa_bit(SimdType::kAvx512);

TEST(SimdDispatch, ParseRoundTripsEverySpelling) {
  for (const SimdType isa : kIsaRanking) {
    EXPECT_EQ(parse_simd_type(to_string(isa)), isa);
  }
}

TEST(SimdDispatch, ParseRejectsUnknownWithValidSpellings) {
  try {
    parse_simd_type("avx9000");
    FAIL() << "expected RuntimeFailure";
  } catch (const RuntimeFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("avx9000"), std::string::npos);
    EXPECT_NE(what.find("valid: scalar, sse2, avx2, avx512"),
              std::string::npos);
  }
}

TEST(SimdDispatch, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(cpu_supports(SimdType::kScalar));
}

TEST(SimdDispatch, CpuSupportIsMonotoneDownTheRanking) {
  // A CPU with AVX-512F has AVX2; a CPU with AVX2 has SSE2.  This is both
  // an architectural fact and what makes "first supported in ranking order"
  // a safe dispatch policy.
  if (cpu_supports(SimdType::kAvx512)) {
    EXPECT_TRUE(cpu_supports(SimdType::kAvx2));
  }
  if (cpu_supports(SimdType::kAvx2)) {
    EXPECT_TRUE(cpu_supports(SimdType::kSse2));
  }
}

TEST(SimdDispatch, ChooseWalksRankingWithoutRequest) {
  // With every table compiled in, auto-dispatch returns the first ISA this
  // CPU supports, in ranking (widest-first) order.
  const SimdType chosen = choose_isa(kAllIsas, std::nullopt);
  EXPECT_TRUE(cpu_supports(chosen));
  for (const SimdType isa : kIsaRanking) {
    if (isa == chosen) break;
    EXPECT_FALSE(cpu_supports(isa)) << "skipped a supported wider ISA";
  }
}

TEST(SimdDispatch, ChooseRespectsCompiledMask) {
  // A binary carrying only the scalar table must select scalar no matter
  // how wide the CPU is.
  EXPECT_EQ(choose_isa(isa_bit(SimdType::kScalar), std::nullopt),
            SimdType::kScalar);
}

TEST(SimdDispatch, ExplicitRequestNotCompiledInThrows) {
  try {
    choose_isa(isa_bit(SimdType::kScalar), SimdType::kAvx2);
    FAIL() << "expected RuntimeFailure";
  } catch (const RuntimeFailure& e) {
    EXPECT_NE(std::string(e.what()).find("not compiled into this binary"),
              std::string::npos);
  }
}

TEST(SimdDispatch, ExplicitScalarRequestAlwaysWorks) {
  EXPECT_EQ(choose_isa(kAllIsas, SimdType::kScalar), SimdType::kScalar);
}

TEST(SimdDispatch, EmptyMaskThrows) {
  EXPECT_THROW(choose_isa(0u, std::nullopt), RuntimeFailure);
}

TEST(SimdDispatch, EnvOverrideUnsetOrEmptyMeansNoPreference) {
  {
    ScopedSimdEnv env(nullptr);
    EXPECT_FALSE(env_simd_override().has_value());
  }
  {
    // CI matrix legs default the variable to "" for the unforced leg; that
    // must read as unset, not as a parse error.
    ScopedSimdEnv env("");
    EXPECT_FALSE(env_simd_override().has_value());
  }
}

TEST(SimdDispatch, EnvOverrideParsesAndNamesItselfOnError) {
  {
    ScopedSimdEnv env("scalar");
    ASSERT_TRUE(env_simd_override().has_value());
    EXPECT_EQ(*env_simd_override(), SimdType::kScalar);
  }
  {
    ScopedSimdEnv env("pentium");
    try {
      env_simd_override();
      FAIL() << "expected RuntimeFailure";
    } catch (const RuntimeFailure& e) {
      // A typo must fail loudly, naming the variable, not silently
      // auto-dispatch.
      EXPECT_NE(std::string(e.what()).find("EMDPA_SIMD"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace emdpa::simd
