#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace emdpa {
namespace {

TEST(ThreadPool, SizeCountsTheCallingThread) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  // Sweep begin/end/grain shapes: empty, single chunk, grain dividing the
  // range, grain not dividing it, grain zero (clamped to 1), grain larger
  // than the whole range.
  const struct {
    std::size_t begin, end, grain;
  } cases[] = {{0, 0, 1},   {0, 1, 1},    {0, 64, 8},  {3, 50, 7},
               {0, 100, 0}, {10, 20, 100}, {0, 1000, 1}};
  for (const auto& c : cases) {
    std::vector<std::atomic<int>> counts(c.end);
    for (auto& count : counts) count = 0;
    pool.parallel_for(c.begin, c.end, c.grain,
                      [&](std::size_t lo, std::size_t hi) {
                        ASSERT_LE(lo, hi);
                        for (std::size_t i = lo; i < hi; ++i) counts[i]++;
                      });
    for (std::size_t i = 0; i < c.end; ++i) {
      EXPECT_EQ(counts[i], i >= c.begin ? 1 : 0)
          << "index " << i << " of [" << c.begin << ", " << c.end
          << ") grain " << c.grain;
    }
  }
}

TEST(ThreadPool, ZeroLengthRangeNeverCallsBody) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  pool.parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  auto boom = [&] {
    pool.parallel_for(0, 100, 1, [](std::size_t lo, std::size_t) {
      if (lo == 42) throw std::runtime_error("chunk 42 failed");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);

  // The pool survives the failed run.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(16 * 16);
  for (auto& count : counts) count = 0;
  pool.parallel_for(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Inner call from inside a chunk: must not deadlock, covers its whole
      // range serially on this worker.
      pool.parallel_for(0, 16, 4, [&](std::size_t jlo, std::size_t jhi) {
        for (std::size_t j = jlo; j < jhi; ++j) counts[i * 16 + j]++;
      });
    }
  });
  for (const auto& count : counts) EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelReduceIsOrderedAndThreadCountInvariant) {
  // Sum a float sequence whose result depends on accumulation order; the
  // ordered per-chunk fold must give bitwise-equal totals at any pool size.
  std::vector<float> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0f / static_cast<float>(i + 1);
  }
  auto map = [&](std::size_t lo, std::size_t hi) {
    float s = 0.0f;
    for (std::size_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  auto combine = [](float a, float b) { return a + b; };

  ThreadPool serial(1);
  ThreadPool wide(8);
  const float expect =
      serial.parallel_reduce(0, values.size(), 64, 0.0f, map, combine);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const float got =
        wide.parallel_reduce(0, values.size(), 64, 0.0f, map, combine);
    EXPECT_EQ(expect, got);
  }
}

TEST(ThreadPool, DefaultThreadCountHonoursEnvironment) {
  setenv("EMDPA_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  EXPECT_EQ(ThreadPool(0).size(), 3u);

  setenv("EMDPA_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);

  setenv("EMDPA_THREADS", "-2", 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);

  unsetenv("EMDPA_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, GlobalPoolIsShared) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, ConfigureGlobalFailsOnceGlobalExists) {
  ThreadPool::global();
  EXPECT_FALSE(ThreadPool::configure_global(3));
}

TEST(ThreadPool, BackToBackShortRunsAreSafe) {
  // Regression for a use-after-free: the Task lives on parallel_for's stack,
  // and workers that grabbed the Task pointer could still touch it after the
  // caller (having seen all chunks complete) returned and destroyed it.
  // Tiny ranges maximise the window where a worker wakes up only to find
  // every chunk already claimed; run many in a row so a stale Task from run
  // k would be scribbled on during run k+1 (caught by ASan/TSan, and often
  // by the count checks below).
  ThreadPool pool(8);
  for (int run = 0; run < 2000; ++run) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 2, 1,
                      [&](std::size_t lo, std::size_t hi) {
                        count += static_cast<int>(hi - lo);
                      });
    ASSERT_EQ(count, 2);
  }
}

}  // namespace
}  // namespace emdpa
