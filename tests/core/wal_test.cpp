// Write-ahead log: CRC framing, torn-tail recovery, append durability and
// atomic segment rotation.  Like the checkpoint-manager suite, everything
// here runs against real files under the test temp dir — the crash-safety
// claims are about what survives on the filesystem.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.h"
#include "core/wal.h"

namespace emdpa {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::path(::testing::TempDir()) /
             (std::string("wal_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    fs::remove(path_);
    fs::remove(path_ + ".tmp");
  }

  std::string read_all(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void append_raw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << bytes;
  }

  std::string path_;
};

TEST_F(WalTest, MissingFileIsAnEmptyLog) {
  const WalReplay replay = read_wal(path_);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.truncated);
  EXPECT_EQ(replay.dropped_bytes, 0u);
}

TEST_F(WalTest, AppendAndReplayRoundTrip) {
  {
    WalWriter writer(path_);
    writer.append("admit replica-a priority 2");
    writer.append("slice replica-a steps 50");
    writer.append("done replica-a steps 100");
    EXPECT_EQ(writer.appended(), 3u);
  }
  const WalReplay replay = read_wal(path_);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0], "admit replica-a priority 2");
  EXPECT_EQ(replay.records[1], "slice replica-a steps 50");
  EXPECT_EQ(replay.records[2], "done replica-a steps 100");
  EXPECT_FALSE(replay.truncated);
}

TEST_F(WalTest, FrameIsPayloadPlusFixedWidthCrcFooter) {
  const std::string frame = wal_frame("hello");
  // "<payload> #crc=XXXXXXXX": 8 lowercase hex digits, nothing after.
  ASSERT_EQ(frame.size(), 5 + 6 + 8);
  EXPECT_EQ(frame.substr(0, 5), "hello");
  EXPECT_EQ(frame.substr(5, 6), " #crc=");
  for (std::size_t i = frame.size() - 8; i < frame.size(); ++i) {
    EXPECT_TRUE((frame[i] >= '0' && frame[i] <= '9') ||
                (frame[i] >= 'a' && frame[i] <= 'f'))
        << "not a lowercase hex digit at " << i;
  }
}

TEST_F(WalTest, TornTailWithoutNewlineIsDropped) {
  {
    WalWriter writer(path_);
    writer.append("one");
    writer.append("two");
  }
  // A SIGKILL mid-append leaves a partial final line: frame bytes but no
  // terminating newline.  Replay must keep the committed prefix only.
  const std::string partial = wal_frame("three").substr(0, 7);
  append_raw(partial);

  const WalReplay replay = read_wal(path_);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[1], "two");
  EXPECT_TRUE(replay.truncated);
  EXPECT_EQ(replay.dropped_bytes, partial.size());
}

TEST_F(WalTest, CorruptRecordStopsReplayAtThePrefix) {
  {
    WalWriter writer(path_);
    writer.append("first record");
    writer.append("second record");
    writer.append("third record");
  }
  // Flip one payload byte inside the second record: its CRC no longer
  // verifies, so replay recovers exactly the records before it — a prefix of
  // the history, never a corrupted suffix.
  std::string content = read_all(path_);
  const std::size_t second = content.find("second");
  ASSERT_NE(second, std::string::npos);
  content[second] ^= 0x01;
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << content;

  const WalReplay replay = read_wal(path_);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0], "first record");
  EXPECT_TRUE(replay.truncated);
  EXPECT_GT(replay.dropped_bytes, 0u);
}

TEST_F(WalTest, RejectsMultilinePayloads) {
  WalWriter writer(path_);
  EXPECT_THROW(writer.append("line one\nline two"), ContractViolation);
}

TEST_F(WalTest, RewriteAtomicallyReplacesTheSegment) {
  WalWriter writer(path_);
  for (int i = 0; i < 5; ++i) writer.append("old " + std::to_string(i));
  const std::uint64_t before = writer.size_bytes();

  writer.rewrite({"snapshot a", "snapshot b"});

  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
  EXPECT_LT(writer.size_bytes(), before);
  WalReplay replay = read_wal(path_);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "snapshot a");
  EXPECT_EQ(replay.records[1], "snapshot b");

  // The appender keeps working on the rotated segment.
  writer.append("post-rotation");
  replay = read_wal(path_);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[2], "post-rotation");
}

TEST_F(WalTest, ReopeningContinuesTheSameSegment) {
  {
    WalWriter writer(path_);
    writer.append("from the first process");
  }
  {
    WalWriter writer(path_);  // a rerun reopens in append mode
    writer.append("from the second process");
    EXPECT_EQ(writer.appended(), 1u);  // counts this writer's records only
  }
  const WalReplay replay = read_wal(path_);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "from the first process");
  EXPECT_EQ(replay.records[1], "from the second process");
}

TEST_F(WalTest, FsyncHelpersAcceptRealPaths) {
  {
    WalWriter writer(path_);
    writer.append("payload");
  }
  EXPECT_NO_THROW(fsync_file(path_));
  EXPECT_NO_THROW(fsync_parent_directory(path_));
  EXPECT_THROW(fsync_file(path_ + ".does-not-exist"), RuntimeFailure);
}

}  // namespace
}  // namespace emdpa
