// JobQueue ordering: strict priority between bands, deterministic FIFO
// round-robin inside one — the interleaving a batch replays on resume.
#include <gtest/gtest.h>

#include <vector>

#include "core/job_queue.h"

namespace emdpa {
namespace {

TEST(JobQueueTest, HigherPriorityPopsFirst) {
  JobQueue queue;
  queue.push(0, 0);
  queue.push(1, 5);
  queue.push(2, -3);
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), 0u);
  EXPECT_EQ(queue.pop(), 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(JobQueueTest, EqualPriorityIsFifo) {
  JobQueue queue;
  for (std::size_t id = 0; id < 5; ++id) queue.push(id, 7);
  for (std::size_t id = 0; id < 5; ++id) EXPECT_EQ(queue.pop(), id);
}

TEST(JobQueueTest, RepushGoesToBackOfItsBand) {
  // The scheduler re-pushes a job after each time slice; equal-priority jobs
  // must then round-robin: A B A B ..., not A A A ... B.
  JobQueue queue;
  queue.push(0, 1);
  queue.push(1, 1);
  std::vector<std::size_t> order;
  for (int round = 0; round < 3; ++round) {
    const std::size_t id = queue.pop();
    order.push_back(id);
    queue.push(id, 1);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(JobQueueTest, RepushDoesNotStarveLowerPriority) {
  // A re-pushed high-priority job still runs before a waiting lower one:
  // priority is strict, fairness applies only inside a band.
  JobQueue queue;
  queue.push(0, 2);
  queue.push(1, 1);
  EXPECT_EQ(queue.pop(), 0u);
  queue.push(0, 2);
  EXPECT_EQ(queue.pop(), 0u);
}

TEST(JobQueueTest, PopOnEmptyThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.pop(), ContractViolation);
  queue.push(4, 0);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop(), 4u);
  EXPECT_THROW(queue.pop(), ContractViolation);
}

}  // namespace
}  // namespace emdpa
