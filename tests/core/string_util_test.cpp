#include <gtest/gtest.h>

#include "core/string_util.h"

namespace emdpa {
namespace {

TEST(FormatFixed, RespectsPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 4), "3.1416");
  EXPECT_EQ(format_fixed(2.0, 3), "2.000");
}

TEST(FormatAuto, ZeroIsZero) {
  EXPECT_EQ(format_auto(0.0), "0");
}

TEST(FormatAuto, ModerateMagnitudesAreFixed) {
  EXPECT_EQ(format_auto(1.5), "1.5");
  EXPECT_EQ(format_auto(1234.0), "1234");
}

TEST(FormatAuto, ExtremeMagnitudesAreScientific) {
  EXPECT_NE(format_auto(1e-7).find('e'), std::string::npos);
  EXPECT_NE(format_auto(1e9).find('e'), std::string::npos);
}

TEST(Padding, PadLeft) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Padding, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(EndsWith, Basics) {
  EXPECT_TRUE(ends_with("hello.csv", ".csv"));
  EXPECT_FALSE(ends_with("hello.txt", ".csv"));
  EXPECT_FALSE(ends_with("v", ".csv"));
  EXPECT_TRUE(ends_with("x", ""));
}

}  // namespace
}  // namespace emdpa
