#include <gtest/gtest.h>

#include <sstream>

#include "core/vec3.h"
#include "core/vec4.h"

namespace emdpa {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3d v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, SplatBroadcasts) {
  const auto v = Vec3d::splat(2.5);
  EXPECT_EQ(v, (Vec3d{2.5, 2.5, 2.5}));
}

TEST(Vec3, AdditionAndSubtraction) {
  const Vec3d a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3d{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3d{3, 3, 3}));
}

TEST(Vec3, ScalarMultiplicationCommutes) {
  const Vec3d a{1, -2, 3};
  EXPECT_EQ(a * 2.0, 2.0 * a);
  EXPECT_EQ(a * 2.0, (Vec3d{2, -4, 6}));
}

TEST(Vec3, Division) {
  const Vec3d a{2, 4, 8};
  EXPECT_EQ(a / 2.0, (Vec3d{1, 2, 4}));
}

TEST(Vec3, Negation) {
  const Vec3d a{1, -2, 3};
  EXPECT_EQ(-a, (Vec3d{-1, 2, -3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3d a{1, 1, 1};
  a += {1, 2, 3};
  EXPECT_EQ(a, (Vec3d{2, 3, 4}));
  a -= {1, 1, 1};
  EXPECT_EQ(a, (Vec3d{1, 2, 3}));
  a *= 3.0;
  EXPECT_EQ(a, (Vec3d{3, 6, 9}));
  a /= 3.0;
  EXPECT_EQ(a, (Vec3d{1, 2, 3}));
}

TEST(Vec3, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vec3d{1, 2, 3}, Vec3d{4, 5, 6}), 32.0);
}

TEST(Vec3, DotOfOrthogonalVectorsIsZero) {
  EXPECT_DOUBLE_EQ(dot(Vec3d{1, 0, 0}, Vec3d{0, 1, 0}), 0.0);
}

TEST(Vec3, LengthSquaredMatchesDot) {
  const Vec3d a{3, 4, 12};
  EXPECT_DOUBLE_EQ(length_squared(a), dot(a, a));
  EXPECT_DOUBLE_EQ(length(a), 13.0);
}

TEST(Vec3, Hadamard) {
  EXPECT_EQ(hadamard(Vec3d{1, 2, 3}, Vec3d{4, 5, 6}), (Vec3d{4, 10, 18}));
}

TEST(Vec3, PrecisionCast) {
  const Vec3d a{1.5, -2.25, 3.125};  // exactly representable in float
  const Vec3f f = vec_cast<float>(a);
  EXPECT_EQ(f, (Vec3f{1.5f, -2.25f, 3.125f}));
  const Vec3d back = vec_cast<double>(f);
  EXPECT_EQ(back, a);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3d{1, 2, 3};
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

TEST(Vec4, DefaultIsZero) {
  Vec4f v;
  EXPECT_EQ(v, (Vec4f{0, 0, 0, 0}));
}

TEST(Vec4, FromVec3SetsW) {
  const Vec4f v(Vec3f{1, 2, 3}, 7.0f);
  EXPECT_EQ(v, (Vec4f{1, 2, 3, 7}));
  EXPECT_EQ(Vec4f(Vec3f{1, 2, 3}).w, 0.0f);
}

TEST(Vec4, XyzDropsW) {
  const Vec4f v{1, 2, 3, 99};
  EXPECT_EQ(v.xyz(), (Vec3f{1, 2, 3}));
}

TEST(Vec4, Arithmetic) {
  const Vec4f a{1, 2, 3, 4}, b{5, 6, 7, 8};
  EXPECT_EQ(a + b, (Vec4f{6, 8, 10, 12}));
  EXPECT_EQ(b - a, (Vec4f{4, 4, 4, 4}));
  EXPECT_EQ(a * 2.0f, (Vec4f{2, 4, 6, 8}));
}

TEST(Vec4, Dot3IgnoresW) {
  const Vec4f a{1, 2, 3, 100}, b{4, 5, 6, 100};
  EXPECT_FLOAT_EQ(dot3(a, b), 32.0f);
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f + 10000.0f);
}

TEST(Vec4, Splat) {
  EXPECT_EQ(Vec4f::splat(3.0f), (Vec4f{3, 3, 3, 3}));
}

TEST(Vec4, PrecisionCastRoundTrips) {
  const Vec4d a{0.5, 0.25, -0.125, 8.0};
  EXPECT_EQ(vec_cast<double>(vec_cast<float>(a)), a);
}

}  // namespace
}  // namespace emdpa
