// Cross-backend integration: every device model must compute the same
// physics as the double-precision host reference, differing only by its
// arithmetic precision, while reporting device-specific timing.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cellsim/cell_md_app.h"
#include "core/thread_pool.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"
#include "md/backend.h"
#include "md/reference_kernel.h"
#include "md/soa_kernel.h"
#include "md/workload.h"
#include "mtasim/mta_backend.h"

namespace emdpa {
namespace {

std::vector<std::unique_ptr<md::MdBackend>> all_backends() {
  std::vector<std::unique_ptr<md::MdBackend>> backends;
  backends.push_back(std::make_unique<md::HostReferenceBackend>());
  backends.push_back(std::make_unique<opteron::OpteronBackend>());
  backends.push_back(std::make_unique<cell::CellBackend>());
  backends.push_back(std::make_unique<gpu::GpuBackend>());
  backends.push_back(std::make_unique<mta::MtaBackend>());
  return backends;
}

md::RunConfig config_for(std::size_t n, int steps) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(CrossBackend, AllBackendsAgreeOnEnergies) {
  const auto cfg = config_for(128, 4);
  const auto reference = md::HostReferenceBackend().run(cfg);

  for (const auto& backend : all_backends()) {
    const auto r = backend->run(cfg);
    ASSERT_EQ(r.energies.size(), reference.energies.size()) << backend->name();
    // Single-precision devices get a looser envelope.
    const double tol = backend->precision() == "single" ? 2e-3 : 1e-9;
    for (std::size_t s = 0; s < r.energies.size(); ++s) {
      const double scale = std::fabs(reference.energies[s].potential) + 1.0;
      EXPECT_NEAR(r.energies[s].potential, reference.energies[s].potential,
                  tol * scale)
          << backend->name() << " step " << s;
    }
  }
}

TEST(CrossBackend, AllBackendsAgreeOnTrajectories) {
  const auto cfg = config_for(128, 4);
  const auto reference = md::HostReferenceBackend().run(cfg);

  for (const auto& backend : all_backends()) {
    const auto r = backend->run(cfg);
    ASSERT_EQ(r.final_state.size(), reference.final_state.size());
    const double tol = backend->precision() == "single" ? 5e-3 : 1e-9;
    for (std::size_t i = 0; i < r.final_state.size(); ++i) {
      const Vec3d d = r.final_state.positions()[i] -
                      reference.final_state.positions()[i];
      EXPECT_LT(length(d), tol) << backend->name() << " atom " << i;
    }
  }
}

TEST(CrossBackend, SinglePrecisionDevicesAgreeBitwise) {
  // Cell and GPU implement identical single-precision arithmetic.
  const auto cfg = config_for(128, 4);
  const auto cell = cell::CellBackend().run(cfg);
  const auto gpu = gpu::GpuBackend().run(cfg);
  for (std::size_t i = 0; i < cell.final_state.size(); ++i) {
    EXPECT_EQ(cell.final_state.positions()[i], gpu.final_state.positions()[i])
        << "atom " << i;
  }
  for (std::size_t s = 0; s < cell.energies.size(); ++s) {
    EXPECT_DOUBLE_EQ(cell.energies[s].kinetic, gpu.energies[s].kinetic);
  }
}

TEST(CrossBackend, DoublePrecisionDevicesAgreeBitwise) {
  const auto cfg = config_for(128, 4);
  const auto opteron = opteron::OpteronBackend().run(cfg);
  const auto mta = mta::MtaBackend().run(cfg);
  for (std::size_t i = 0; i < opteron.final_state.size(); ++i) {
    EXPECT_EQ(opteron.final_state.positions()[i],
              mta.final_state.positions()[i]);
  }
}

TEST(CrossBackend, PrecisionsDeclaredCorrectly) {
  EXPECT_EQ(opteron::OpteronBackend().precision(), "double");
  EXPECT_EQ(mta::MtaBackend().precision(), "double");
  EXPECT_EQ(cell::CellBackend().precision(), "single");
  EXPECT_EQ(gpu::GpuBackend().precision(), "single");
}

TEST(CrossBackend, DeviceTimesAreDeviceSpecific) {
  const auto cfg = config_for(256, 2);
  const auto opteron = opteron::OpteronBackend().run(cfg).device_time;
  const auto cell8 = cell::CellBackend().run(cfg).device_time;
  const auto gpu = gpu::GpuBackend().run(cfg).device_time;
  const auto mta = mta::MtaBackend().run(cfg).device_time;
  // At 256 atoms: every model produces nonzero, distinct times, and the MTA
  // (200 MHz, saturated) is the slowest device.
  EXPECT_GT(opteron.to_seconds(), 0.0);
  EXPECT_GT(cell8.to_seconds(), 0.0);
  EXPECT_GT(gpu.to_seconds(), 0.0);
  EXPECT_GT(mta.to_seconds(), opteron.to_seconds());
}

TEST(CrossBackend, SoaKernelMatchesReferenceForEveryStrategy) {
  // The SIMD batch kernel must reproduce the scalar reference under all four
  // minimum-image strategies — they are the same physics on wrapped
  // coordinates, which is exactly what the SoA kernel computes.
  md::WorkloadSpec spec;
  spec.n_atoms = 200;
  md::Workload w = md::make_lattice_workload(spec);
  const md::LjParams lj;

  for (const auto strategy :
       {md::MinImageStrategy::kSearch27, md::MinImageStrategy::kBranchy,
        md::MinImageStrategy::kCopysign, md::MinImageStrategy::kRound}) {
    md::ReferenceKernel reference(strategy);
    md::SoaKernel soa(strategy);
    const auto want = reference.compute(w.system.positions(), w.box, lj, 1.0);
    const auto got = soa.compute(w.system.positions(), w.box, lj, 1.0);

    const double scale = std::fabs(want.potential_energy) + 1.0;
    EXPECT_NEAR(got.potential_energy, want.potential_energy, 1e-10 * scale)
        << soa.name();
    EXPECT_NEAR(got.virial, want.virial, 1e-10 * scale) << soa.name();
    EXPECT_EQ(got.stats.candidates, want.stats.candidates);
    EXPECT_EQ(got.stats.interacting, want.stats.interacting);
    ASSERT_EQ(got.accelerations.size(), want.accelerations.size());
    for (std::size_t i = 0; i < want.accelerations.size(); ++i) {
      const double fscale = length(want.accelerations[i]) + 1.0;
      EXPECT_LT(length(got.accelerations[i] - want.accelerations[i]),
                1e-10 * fscale)
          << soa.name() << " atom " << i;
    }
  }
}

TEST(CrossBackend, SoaKernelSinglePrecisionMatchesReference) {
  md::WorkloadSpec spec;
  spec.n_atoms = 200;
  md::Workload w = md::make_lattice_workload(spec);
  std::vector<Vec3f> pos;
  for (const auto& p : w.system.positions()) pos.push_back(vec_cast<float>(p));
  const md::PeriodicBoxF box(static_cast<float>(w.box.edge()));
  const auto lj = md::LjParams{}.cast<float>();

  md::ReferenceKernelF reference;
  md::SoaKernelF soa;
  const auto want = reference.compute(pos, box, lj, 1.0f);
  const auto got = soa.compute(pos, box, lj, 1.0f);

  const float scale = std::fabs(want.potential_energy) + 1.0f;
  EXPECT_NEAR(got.potential_energy, want.potential_energy, 1e-4f * scale);
  EXPECT_EQ(got.stats.interacting, want.stats.interacting);
}

TEST(CrossBackend, SoaKernelParallelIsBitIdenticalToSerial) {
  // Chunk boundaries are thread-count independent and the row reduction is
  // ordered, so a pooled run must match the serial run bitwise.
  md::WorkloadSpec spec;
  spec.n_atoms = 171;  // deliberately not a multiple of any SIMD width
  md::Workload w = md::make_lattice_workload(spec);
  const md::LjParams lj;

  ThreadPool pool(4);
  md::SoaKernel::Options options;
  options.pool = &pool;
  options.grain = 8;
  md::SoaKernel parallel(options);
  md::SoaKernel serial;

  const auto want = serial.compute(w.system.positions(), w.box, lj, 1.0);
  const auto got = parallel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(got.potential_energy, want.potential_energy);
  EXPECT_EQ(got.virial, want.virial);
  for (std::size_t i = 0; i < want.accelerations.size(); ++i) {
    EXPECT_EQ(got.accelerations[i], want.accelerations[i]) << "atom " << i;
  }
}

TEST(CrossBackend, HostParallelBackendMatchesHostReference) {
  const auto cfg = config_for(128, 4);
  const auto reference = md::HostReferenceBackend().run(cfg);
  const auto parallel = md::HostParallelBackend().run(cfg);

  ASSERT_EQ(parallel.energies.size(), reference.energies.size());
  for (std::size_t s = 0; s < parallel.energies.size(); ++s) {
    const double scale = std::fabs(reference.energies[s].potential) + 1.0;
    EXPECT_NEAR(parallel.energies[s].potential,
                reference.energies[s].potential, 1e-10 * scale)
        << "step " << s;
    EXPECT_NEAR(parallel.energies[s].kinetic, reference.energies[s].kinetic,
                1e-10 * scale)
        << "step " << s;
  }
  // The backend reports its real execution configuration through the
  // dimensionless metadata channel, not the timing breakdown.
  EXPECT_GE(parallel.metadata.at("threads"), 1.0);
  EXPECT_GE(parallel.metadata.at("simd_width"), 1.0);
  EXPECT_EQ(parallel.metadata.at("kernel_list"), 0.0);  // 128 < crossover
  EXPECT_EQ(parallel.breakdown.count("threads"), 0u);
  EXPECT_GT(parallel.breakdown.at("host_wall").to_seconds(), 0.0);
}

TEST(CrossBackend, HostParallelListKernelMatchesHostReference) {
  auto cfg = config_for(128, 4);
  cfg.host_kernel = md::HostKernel::kList;
  const auto reference = md::HostReferenceBackend().run(cfg);
  const auto parallel = md::HostParallelBackend().run(cfg);

  ASSERT_EQ(parallel.energies.size(), reference.energies.size());
  for (std::size_t s = 0; s < parallel.energies.size(); ++s) {
    const double scale = std::fabs(reference.energies[s].potential) + 1.0;
    EXPECT_NEAR(parallel.energies[s].potential,
                reference.energies[s].potential, 1e-10 * scale)
        << "step " << s;
  }
  EXPECT_EQ(parallel.metadata.at("kernel_list"), 1.0);
  EXPECT_GE(parallel.metadata.at("list_rebuilds"), 1.0);
}

TEST(CrossBackend, HostParallelAutoSelectsListAboveCrossover) {
  auto cfg = config_for(md::HostParallelBackend::kListCrossoverAtoms, 1);
  const auto r = md::HostParallelBackend().run(cfg);
  EXPECT_EQ(r.metadata.at("kernel_list"), 1.0);

  auto small = config_for(128, 1);
  small.host_kernel = md::HostKernel::kN2;
  const auto s = md::HostParallelBackend().run(small);
  EXPECT_EQ(s.metadata.at("kernel_list"), 0.0);
  EXPECT_EQ(s.metadata.count("list_rebuilds"), 0u);
}

class CrossBackendSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(CrossBackendSweep, EnergiesTrackReferenceAcrossConfigs) {
  const auto [n, steps] = GetParam();
  const auto cfg = config_for(n, steps);
  const auto reference = md::HostReferenceBackend().run(cfg);
  const auto cell = cell::CellBackend().run(cfg);
  const auto mta = mta::MtaBackend().run(cfg);
  const double scale = std::fabs(reference.energies.back().potential) + 1.0;
  EXPECT_NEAR(cell.energies.back().potential,
              reference.energies.back().potential, 2e-3 * scale);
  EXPECT_DOUBLE_EQ(mta.energies.back().potential,
                   reference.energies.back().potential);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossBackendSweep,
    ::testing::Combine(::testing::Values(std::size_t{125}, std::size_t{200},
                                         std::size_t{256}),
                       ::testing::Values(1, 5)));

}  // namespace
}  // namespace emdpa
