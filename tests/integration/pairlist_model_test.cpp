// The section-3.4 pairlist trade-off, priced across the device families.
//
// These tests pin the *qualitative* shape the cost models must reproduce —
// the reason the paper's streaming ports compute distances on the fly — not
// exact times: the MTA-2 banks the full instruction reduction, the cache
// machine keeps most of it, and the Cell and GPU have the least to gain.
#include <gtest/gtest.h>

#include "cellsim/cell_pairlist.h"
#include "cpu/opteron_pairlist.h"
#include "gpusim/gpu_pairlist.h"
#include "md/pairlist_cost.h"
#include "mtasim/mta_pairlist.h"

namespace emdpa {
namespace {

md::PairlistStepWork measured_work(std::size_t n_atoms) {
  md::WorkloadSpec spec;
  spec.n_atoms = n_atoms;
  md::LjParams lj;
  return md::measure_pairlist_step_work(spec, lj, /*skin=*/0.3, /*dt=*/0.005,
                                        /*steps=*/20);
}

TEST(PairlistWork, MeasuredCountsAreConsistent) {
  // 2048 atoms: the first size where the cell grid exceeds 3 cells per
  // axis, so a build's sweep covers a proper subset of the box (at 3 cells
  // the 27-cell stencil IS the whole box and tests exactly N*(N-1) pairs).
  const md::PairlistStepWork work = measured_work(2048);
  EXPECT_EQ(work.n_atoms, 2048u);
  const double n = 2048.0;
  EXPECT_DOUBLE_EQ(work.candidates_directed, n * (n - 1.0));

  // The list walks a small fraction of the N^2 candidates, but every
  // interacting pair must be inside the cutoff+skin shell it walks.
  EXPECT_GT(work.list_entries_directed, work.interacting_directed);
  EXPECT_LT(work.list_entries_directed, 0.2 * work.candidates_directed);

  // The skin buys several steps of reuse — "updated every few simulation
  // time steps" — and a build tests more pairs than it keeps.
  EXPECT_GT(work.rebuild_period_steps, 2.0);
  EXPECT_GT(work.build_tests_directed, work.list_entries_directed);
  EXPECT_LT(work.build_tests_directed, work.candidates_directed);
}

TEST(PairlistWork, MeasurementIsDeterministic) {
  const md::PairlistStepWork a = measured_work(512);
  const md::PairlistStepWork b = measured_work(512);
  EXPECT_DOUBLE_EQ(a.list_entries_directed, b.list_entries_directed);
  EXPECT_DOUBLE_EQ(a.interacting_directed, b.interacting_directed);
  EXPECT_DOUBLE_EQ(a.build_tests_directed, b.build_tests_directed);
  EXPECT_DOUBLE_EQ(a.rebuild_period_steps, b.rebuild_period_steps);
}

TEST(PairlistModel, SpeedupOrderingMatchesThePaper) {
  const md::PairlistStepWork work = measured_work(2048);

  const opteron::OpteronConfig opteron_cfg;
  const mta::MtaConfig mta_cfg;
  const cell::CellConfig cell_cfg;
  const gpu::GpuDeviceConfig gpu_cfg;
  const gpu::PcieConfig pcie_cfg;

  const double opteron_x = opteron::n2_step_time(opteron_cfg, work) /
                           opteron::pairlist_step_time(opteron_cfg, work);
  const double mta_x = mta::mta_n2_step_time(mta_cfg, work) /
                       mta::mta_pairlist_step_time(mta_cfg, work);
  const double cell_x = cell::cell_n2_step_time(cell_cfg, work) /
                        cell::cell_pairlist_step_time(cell_cfg, work);
  const double gpu_x = gpu::gpu_n2_step_time(gpu_cfg, pcie_cfg, work) /
                       gpu::gpu_pairlist_step_time(gpu_cfg, pcie_cfg, work);

  // Cache machine and MTA both win big; the MTA wins the most (the gather
  // is free there, while the Opteron pays it once the footprint grows).
  EXPECT_GT(opteron_x, 10.0);
  EXPECT_GT(mta_x, opteron_x);

  // The streaming architectures have the least to gain: the Cell trades its
  // SIMD loop for a scalar gather, the GPU pays two dependent fetches per
  // entry on top of its PCIe floor.  Neither comes near the cache machine.
  EXPECT_LT(cell_x, 0.2 * opteron_x);
  EXPECT_LT(gpu_x, 0.2 * opteron_x);
  EXPECT_LT(cell_x, 3.0);
  EXPECT_LT(gpu_x, 3.0);
}

TEST(PairlistModel, CellPairlistForfeitsTheSimdWinAtModerateSizes) {
  // At 1024 atoms the Cell's pairlist variant is an outright loss: the
  // scalar gather costs more than the SIMD N^2 loop it replaces.
  const md::PairlistStepWork work = measured_work(1024);
  const cell::CellConfig cfg;
  EXPECT_LT(cell::cell_n2_step_time(cfg, work),
            cell::cell_pairlist_step_time(cfg, work));
}

TEST(PairlistModel, GpuIsPinnedByThePcieFloorAtSmallSizes) {
  // At 512 atoms both GPU variants are dominated by the per-step transfer
  // and dispatch floor, so the list buys almost nothing (Fig 7's small-N
  // regime, where the CPU beats the GPU outright).
  const md::PairlistStepWork work = measured_work(512);
  const gpu::GpuDeviceConfig device;
  const gpu::PcieConfig pcie;
  const double x = gpu::gpu_n2_step_time(device, pcie, work) /
                   gpu::gpu_pairlist_step_time(device, pcie, work);
  EXPECT_GT(x, 0.8);
  EXPECT_LT(x, 1.3);
}

TEST(PairlistModel, XmtNetworkClawsBackPartOfTheWinAtScale) {
  // Single processor: issue-limited, so the XMT sees the same instruction
  // reduction the MTA-2 does.  On a big configuration the remote-reference
  // bottleneck binds, and the reference-denser pairlist loop gives back
  // part of the win — the locality warning the paper closes with.
  const md::PairlistStepWork work = measured_work(2048);

  mta::XmtConfig one;
  const double x1 = mta::xmt_n2_step_time(one, work) /
                    mta::xmt_pairlist_step_time(one, work);

  mta::XmtConfig big;
  big.n_processors = 1024;
  const double x1024 = mta::xmt_n2_step_time(big, work) /
                       mta::xmt_pairlist_step_time(big, work);

  EXPECT_GT(x1, 10.0);
  EXPECT_LT(x1024, x1);
  EXPECT_GT(x1024, 1.0);  // still a win, just a smaller one
}

}  // namespace
}  // namespace emdpa
