// Physics invariants that must hold on every backend: conservation laws and
// consistency of derived quantities, swept over workload parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cellsim/cell_md_app.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"
#include "md/backend.h"
#include "md/observables.h"
#include "mtasim/mta_backend.h"

namespace emdpa {
namespace {

enum class Which { kHost, kOpteron, kCell, kGpu, kMta };

std::unique_ptr<md::MdBackend> make_backend(Which which) {
  switch (which) {
    case Which::kHost: return std::make_unique<md::HostReferenceBackend>();
    case Which::kOpteron: return std::make_unique<opteron::OpteronBackend>();
    case Which::kCell: return std::make_unique<cell::CellBackend>();
    case Which::kGpu: return std::make_unique<gpu::GpuBackend>();
    case Which::kMta: return std::make_unique<mta::MtaBackend>();
  }
  return nullptr;
}

class BackendProperty : public ::testing::TestWithParam<Which> {};

TEST_P(BackendProperty, MomentumConservedOverRun) {
  auto backend = make_backend(GetParam());
  md::RunConfig cfg;
  cfg.workload.n_atoms = 128;
  cfg.steps = 8;
  const auto r = backend->run(cfg);
  const Vec3d p = md::total_momentum_of(r.final_state);
  const double tol = backend->precision() == "single" ? 1e-2 : 1e-9;
  EXPECT_NEAR(length(p), 0.0, tol) << backend->name();
}

TEST_P(BackendProperty, EnergyBoundedOverShortRun) {
  // Over 8 steps the (truncated-potential) total energy may drift but must
  // stay within a few percent — a regression net for integrator bugs, which
  // diverge immediately.
  auto backend = make_backend(GetParam());
  md::RunConfig cfg;
  cfg.workload.n_atoms = 128;
  cfg.steps = 8;
  const auto r = backend->run(cfg);
  const double e0 = r.energies.front().total();
  const double ef = r.energies.back().total();
  EXPECT_NEAR(ef, e0, 0.05 * (std::fabs(e0) + 1.0)) << backend->name();
}

TEST_P(BackendProperty, KineticEnergyNonNegative) {
  auto backend = make_backend(GetParam());
  md::RunConfig cfg;
  cfg.workload.n_atoms = 64;
  cfg.steps = 5;
  const auto r = backend->run(cfg);
  for (const auto& e : r.energies) EXPECT_GE(e.kinetic, 0.0);
}

TEST_P(BackendProperty, FinalPositionsInsideBox) {
  auto backend = make_backend(GetParam());
  md::RunConfig cfg;
  cfg.workload.n_atoms = 64;
  cfg.steps = 5;
  const auto r = backend->run(cfg);
  const double edge = md::box_edge_for(64, cfg.workload.density);
  for (const auto& p : r.final_state.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, edge);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, edge);
  }
}

TEST_P(BackendProperty, DeterministicAcrossRuns) {
  auto backend_a = make_backend(GetParam());
  auto backend_b = make_backend(GetParam());
  md::RunConfig cfg;
  cfg.workload.n_atoms = 64;
  cfg.steps = 3;
  const auto a = backend_a->run(cfg);
  const auto b = backend_b->run(cfg);
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
  EXPECT_EQ(a.device_time, b.device_time);
}

TEST_P(BackendProperty, HotterWorkloadsHaveHigherKineticEnergy) {
  auto backend = make_backend(GetParam());
  md::RunConfig cold, hot;
  cold.workload.n_atoms = hot.workload.n_atoms = 64;
  cold.workload.temperature = 0.3;
  hot.workload.temperature = 2.0;
  cold.steps = hot.steps = 1;
  const auto rc = backend->run(cold);
  const auto rh = backend->run(hot);
  EXPECT_GT(rh.energies.front().kinetic, rc.energies.front().kinetic);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendProperty,
                         ::testing::Values(Which::kHost, Which::kOpteron,
                                           Which::kCell, Which::kGpu,
                                           Which::kMta),
                         [](const auto& info) {
                           switch (info.param) {
                             case Which::kHost: return "Host";
                             case Which::kOpteron: return "Opteron";
                             case Which::kCell: return "Cell";
                             case Which::kGpu: return "Gpu";
                             case Which::kMta: return "Mta";
                           }
                           return "Unknown";
                         });

class DensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweep, DenserSystemsBindMoreTightly) {
  // Near the LJ liquid regime, higher density -> more interacting pairs.
  md::RunConfig a, b;
  a.workload.n_atoms = b.workload.n_atoms = 256;
  // The multiplier must move the cutoff across at least one *populated*
  // lattice shell; 1.3 can land both densities in the same |v|^2 shell
  // (e.g. |v|^2 = 7 has no integer solutions), so use 1.6.
  a.workload.density = GetParam();
  b.workload.density = GetParam() * 1.6;
  a.steps = b.steps = 1;
  const auto ra = opteron::OpteronBackend().run(a);
  const auto rb = opteron::OpteronBackend().run(b);
  EXPECT_GT(rb.ops.get("opteron.pair_interactions"),
            ra.ops.get("opteron.pair_interactions"));
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweep,
                         ::testing::Values(0.4, 0.6, 0.8));

}  // namespace
}  // namespace emdpa
