// The paper's headline performance claims, asserted against the calibrated
// device models at the paper's own configuration (2048 atoms, 10 time
// steps).  These are the regression net for the reproduction itself: if a
// model change breaks a claim, the corresponding bench no longer reproduces
// its table/figure.
#include <gtest/gtest.h>

#include "cellsim/cell_md_app.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"
#include "mtasim/mta_backend.h"

namespace emdpa {
namespace {

md::RunConfig paper_config(std::size_t n = 2048) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = 10;
  return cfg;
}

class PaperClaims : public ::testing::Test {
 protected:
  // One shared set of full-size runs for all claims (they are expensive).
  static void SetUpTestSuite() {
    const auto cfg = paper_config();
    opteron_ = new md::RunResult(opteron::OpteronBackend().run(cfg));
    cell::CellRunOptions one;
    one.n_spes = 1;
    cell1_ = new md::RunResult(cell::CellBackend(one).run(cfg));
    cell::CellRunOptions eight;
    eight.n_spes = 8;
    cell8_ = new md::RunResult(cell::CellBackend(eight).run(cfg));
    cell::CellRunOptions ppe;
    ppe.n_spes = 0;
    ppe_ = new md::RunResult(cell::CellBackend(ppe).run(cfg));
    gpu_ = new md::RunResult(gpu::GpuBackend().run(cfg));
  }

  static void TearDownTestSuite() {
    delete opteron_;
    delete cell1_;
    delete cell8_;
    delete ppe_;
    delete gpu_;
  }

  static md::RunResult* opteron_;
  static md::RunResult* cell1_;
  static md::RunResult* cell8_;
  static md::RunResult* ppe_;
  static md::RunResult* gpu_;
};

md::RunResult* PaperClaims::opteron_ = nullptr;
md::RunResult* PaperClaims::cell1_ = nullptr;
md::RunResult* PaperClaims::cell8_ = nullptr;
md::RunResult* PaperClaims::ppe_ = nullptr;
md::RunResult* PaperClaims::gpu_ = nullptr;

TEST_F(PaperClaims, Table1OpteronAbsoluteRuntime) {
  // Paper: 4.084 s.  Within 10%.
  EXPECT_NEAR(opteron_->device_time.to_seconds(), 4.084, 0.41);
}

TEST_F(PaperClaims, Table1SingleSpeJustEdgesOutOpteron) {
  // Paper: 3.86 s vs 4.084 s — the SPE wins, but by less than 25%.
  const double spe = cell1_->device_time.to_seconds();
  const double cpu = opteron_->device_time.to_seconds();
  EXPECT_LT(spe, cpu);
  EXPECT_GT(spe, 0.75 * cpu);
}

TEST_F(PaperClaims, Table1EightSpesBeatOpteronByOverFiveX) {
  const double speedup =
      opteron_->device_time.to_seconds() / cell8_->device_time.to_seconds();
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 7.0);
}

TEST_F(PaperClaims, Table1PpeAboutFiveTimesSlowerThanOpteron) {
  const double ratio =
      ppe_->device_time.to_seconds() / opteron_->device_time.to_seconds();
  EXPECT_NEAR(ratio, 5.0, 1.0);
}

TEST_F(PaperClaims, Table1EightSpesTwentySixTimesFasterThanPpe) {
  const double ratio =
      ppe_->device_time.to_seconds() / cell8_->device_time.to_seconds();
  EXPECT_NEAR(ratio, 26.0, 5.0);
}

TEST_F(PaperClaims, GpuAlmostSixTimesFasterThanCpuAt2048) {
  const double speedup =
      opteron_->device_time.to_seconds() / gpu_->device_time.to_seconds();
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 7.0);
}

TEST_F(PaperClaims, GpuSlowerThanCpuAtSmallAtomCounts) {
  const auto cfg = paper_config(128);
  const auto cpu = opteron::OpteronBackend().run(cfg);
  const auto gpu = gpu::GpuBackend().run(cfg);
  EXPECT_GT(gpu.device_time.to_seconds(), cpu.device_time.to_seconds());
}

TEST_F(PaperClaims, Fig5ReflectionSimdIsOverOnePointFiveX) {
  // "running over 1.5x faster than the original" after the SIMD unit-cell
  // reflection step.
  const auto cfg = paper_config();
  cell::CellRunOptions original, reflect;
  original.n_spes = reflect.n_spes = 1;
  original.variant = cell::SimdVariant::kOriginal;
  reflect.variant = cell::SimdVariant::kSimdReflect;
  const double t0 = cell::CellBackend(original)
                        .run(cfg)
                        .breakdown_component("spe_compute")
                        .to_seconds();
  const double t2 = cell::CellBackend(reflect)
                        .run(cfg)
                        .breakdown_component("spe_compute")
                        .to_seconds();
  EXPECT_GT(t0 / t2, 1.5);
  EXPECT_LT(t0 / t2, 2.1);
}

TEST_F(PaperClaims, Fig6RespawnEightSpesOnlyAboutOnePointFiveXOverOneSpe) {
  // "the thread launch overhead grows by a factor of eight, which makes even
  // an efficient parallelization run only about 1.5x faster using all SPEs."
  const auto cfg = paper_config();
  cell::CellRunOptions respawn8;
  respawn8.n_spes = 8;
  respawn8.launch_mode = cell::LaunchMode::kRespawnEveryStep;
  const auto r8 = cell::CellBackend(respawn8).run(cfg);
  const double ratio =
      cell1_->device_time.to_seconds() / r8.device_time.to_seconds();
  EXPECT_NEAR(ratio, 1.5, 0.35);
}

TEST_F(PaperClaims, Fig6PersistentEightSpesAboutFourPointFiveXOverOneSpe) {
  // "this eight-SPE version is now 4.5x faster than this single-SPE version."
  const double ratio =
      cell1_->device_time.to_seconds() / cell8_->device_time.to_seconds();
  EXPECT_NEAR(ratio, 4.5, 0.7);
}

TEST_F(PaperClaims, Fig8PartialMultithreadingFarSlower) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = 512;
  cfg.steps = 2;
  const auto full = mta::MtaBackend(mta::ThreadingMode::kFullyMultithreaded).run(cfg);
  const auto part =
      mta::MtaBackend(mta::ThreadingMode::kPartiallyMultithreaded).run(cfg);
  EXPECT_GT(part.device_time / full.device_time, 10.0);
}

TEST_F(PaperClaims, Fig9MtaScalesWithFlopsOpteronDegradesBeyondCache) {
  md::RunConfig base, big;
  base.workload.n_atoms = 256;
  big.workload.n_atoms = 4096;
  base.steps = big.steps = 1;

  const double mta_ratio =
      mta::MtaBackend().run(big).device_time /
      mta::MtaBackend().run(base).device_time;
  const double cpu_ratio =
      opteron::OpteronBackend().run(big).device_time /
      opteron::OpteronBackend().run(base).device_time;

  const double work_ratio = (4096.0 * 4095.0) / (256.0 * 255.0);
  // MTA tracks the pair-work growth; the Opteron exceeds it (cache misses
  // beyond the 64 KB L1).
  EXPECT_NEAR(mta_ratio, work_ratio, 0.05 * work_ratio);
  EXPECT_GT(cpu_ratio, mta_ratio);
}

}  // namespace
}  // namespace emdpa
