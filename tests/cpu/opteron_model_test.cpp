#include <gtest/gtest.h>

#include <cmath>

#include "cpu/opteron_model.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::opteron {
namespace {

md::Workload small_fluid(std::size_t n = 125) {
  md::WorkloadSpec spec;
  spec.n_atoms = n;
  return md::make_lattice_workload(spec);
}

TEST(InstructionProfile, Search27IsByFarTheHeaviest) {
  const auto s27 = profile_for(md::MinImageStrategy::kSearch27);
  const auto round = profile_for(md::MinImageStrategy::kRound);
  const auto branchy = profile_for(md::MinImageStrategy::kBranchy);
  const auto copysign = profile_for(md::MinImageStrategy::kCopysign);
  EXPECT_GT(s27.per_candidate, 8 * round.per_candidate);
  EXPECT_LT(branchy.per_candidate, copysign.per_candidate);
  EXPECT_LT(copysign.per_candidate, round.per_candidate);
}

TEST(OpteronMachine, PhysicsMatchesReferenceKernel) {
  md::Workload w = small_fluid();
  md::LjParams lj;
  OpteronMachine machine;
  const auto timed = machine.compute_forces(w.system.positions(), w.box, lj, 1.0);

  md::ReferenceKernel ref(md::MinImageStrategy::kRound);
  const auto expect = ref.compute(w.system.positions(), w.box, lj, 1.0);

  EXPECT_EQ(timed.stats.candidates, expect.stats.candidates);
  EXPECT_EQ(timed.stats.interacting, expect.stats.interacting);
  EXPECT_NEAR(timed.potential_energy, expect.potential_energy, 1e-10);
  for (std::size_t i = 0; i < expect.accelerations.size(); ++i) {
    EXPECT_NEAR(timed.accelerations[i].x, expect.accelerations[i].x, 1e-10);
  }
}

TEST(OpteronMachine, BranchyStrategySamePhysics) {
  md::Workload w = small_fluid();
  for (auto& p : w.system.positions()) p = w.box.wrap(p);
  md::LjParams lj;

  OpteronConfig cfg;
  cfg.strategy = md::MinImageStrategy::kBranchy;
  OpteronMachine branchy(cfg);
  OpteronMachine standard;
  const auto a = branchy.compute_forces(w.system.positions(), w.box, lj, 1.0);
  const auto b = standard.compute_forces(w.system.positions(), w.box, lj, 1.0);
  EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-10);
}

TEST(OpteronMachine, TimeGrowsWithWork) {
  md::LjParams lj;
  OpteronMachine machine;
  md::Workload small = small_fluid(125);
  machine.compute_forces(small.system.positions(), small.box, lj, 1.0);
  const ModelTime t_small = machine.elapsed();

  machine.reset();
  md::Workload big = small_fluid(512);
  machine.compute_forces(big.system.positions(), big.box, lj, 1.0);
  const ModelTime t_big = machine.elapsed();

  // ~ (512/125)^2 = 16.8x more pair work.
  EXPECT_GT(t_big / t_small, 10.0);
  EXPECT_LT(t_big / t_small, 25.0);
}

TEST(OpteronMachine, Search27CostsFarMoreThanRound) {
  md::Workload w = small_fluid(125);
  md::LjParams lj;

  OpteronMachine heavy;  // default kSearch27
  heavy.compute_forces(w.system.positions(), w.box, lj, 1.0);

  OpteronConfig cfg;
  cfg.strategy = md::MinImageStrategy::kRound;
  OpteronMachine light(cfg);
  light.compute_forces(w.system.positions(), w.box, lj, 1.0);

  EXPECT_GT(heavy.elapsed() / light.elapsed(), 4.0);
}

TEST(OpteronMachine, ResetClearsEverything) {
  md::Workload w = small_fluid(125);
  md::LjParams lj;
  OpteronMachine machine;
  machine.compute_forces(w.system.positions(), w.box, lj, 1.0);
  EXPECT_GT(machine.elapsed().to_seconds(), 0.0);
  machine.reset();
  EXPECT_DOUBLE_EQ(machine.elapsed().to_seconds(), 0.0);
  EXPECT_EQ(machine.ops().get("opteron.flops"), 0u);
  EXPECT_EQ(machine.memory().l1_misses(), 0u);
}

TEST(OpteronMachine, IntegrationStepChargesStreamingTraffic) {
  OpteronMachine machine;
  machine.charge_integration_step(1000);
  EXPECT_GT(machine.elapsed().to_seconds(), 0.0);
  EXPECT_GT(machine.memory().accesses(), 1000u);
}

TEST(OpteronMachine, CountsPairStatsInOps) {
  md::Workload w = small_fluid(125);
  md::LjParams lj;
  OpteronMachine machine;
  const auto r = machine.compute_forces(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(machine.ops().get("opteron.pair_candidates"), r.stats.candidates);
  EXPECT_EQ(machine.ops().get("opteron.pair_interactions"), r.stats.interacting);
  EXPECT_EQ(r.stats.candidates, 125u * 124u / 2u);  // unordered pairs
}

TEST(OpteronMachine, MispredictsChargedOnlyForBranchy) {
  md::Workload w = small_fluid(125);
  for (auto& p : w.system.positions()) p = w.box.wrap(p);
  md::LjParams lj;

  OpteronMachine standard;
  standard.compute_forces(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(standard.ops().get("opteron.mispredicts"), 0u);

  OpteronConfig cfg;
  cfg.strategy = md::MinImageStrategy::kBranchy;
  OpteronMachine branchy(cfg);
  branchy.compute_forces(w.system.positions(), w.box, lj, 1.0);
  EXPECT_GT(branchy.ops().get("opteron.mispredicts"), 0u);
}

TEST(OpteronMachine, TableOneAnchor) {
  // The calibration contract: 2048 atoms, one force evaluation, priced at
  // ~1/10th of the paper's 4.084 s total (the N^2 phase dominates).
  md::Workload w = small_fluid(2048);
  md::LjParams lj;
  OpteronMachine machine;
  machine.compute_forces(w.system.positions(), w.box, lj, 1.0);
  const double per_step = machine.elapsed().to_seconds();
  EXPECT_GT(per_step, 0.30);
  EXPECT_LT(per_step, 0.50);
}

}  // namespace
}  // namespace emdpa::opteron
