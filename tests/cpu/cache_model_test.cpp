#include <gtest/gtest.h>

#include "core/error.h"
#include "cpu/cache_model.h"

namespace emdpa::opteron {
namespace {

CacheConfig tiny_cache() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return {512, 64, 2};
}

TEST(CacheLevel, ValidatesGeometry) {
  EXPECT_THROW(CacheLevel({100, 60, 2}), ContractViolation);   // line not pow2
  EXPECT_THROW(CacheLevel({512, 64, 0}), ContractViolation);   // no ways
  EXPECT_THROW(CacheLevel({500, 64, 2}), ContractViolation);   // not divisible
}

TEST(CacheLevel, FirstAccessMissesThenHits) {
  CacheLevel cache(tiny_cache());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1030));  // same 64B line
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheLevel, DistinctLinesMissSeparately) {
  CacheLevel cache(tiny_cache());
  cache.access(0x0000);
  cache.access(0x0040);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheLevel, AssociativityHoldsConflictingLines) {
  CacheLevel cache(tiny_cache());  // 4 sets -> set stride 256 B
  // Two lines mapping to set 0: offsets 0 and 256.
  cache.access(0x0000);
  cache.access(0x0100);
  EXPECT_TRUE(cache.access(0x0000));
  EXPECT_TRUE(cache.access(0x0100));
}

TEST(CacheLevel, LruEvictionOnThirdConflict) {
  CacheLevel cache(tiny_cache());
  cache.access(0x0000);  // set 0, way A
  cache.access(0x0100);  // set 0, way B
  cache.access(0x0200);  // set 0 -> evicts 0x0000 (LRU)
  EXPECT_FALSE(cache.access(0x0000));  // was evicted
  EXPECT_TRUE(cache.access(0x0200));
}

TEST(CacheLevel, LruUpdatedByHits) {
  CacheLevel cache(tiny_cache());
  cache.access(0x0000);
  cache.access(0x0100);
  cache.access(0x0000);  // touch A again: B is now LRU
  cache.access(0x0200);  // evicts B
  EXPECT_TRUE(cache.access(0x0000));
  EXPECT_FALSE(cache.access(0x0100));
}

TEST(CacheLevel, ResetStatsKeepsContents) {
  CacheLevel cache(tiny_cache());
  cache.access(0x0000);
  cache.reset_stats();
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_TRUE(cache.access(0x0000));  // still resident
}

TEST(CacheLevel, InvalidateAllEmptiesCache) {
  CacheLevel cache(tiny_cache());
  cache.access(0x0000);
  cache.invalidate_all();
  EXPECT_FALSE(cache.access(0x0000));
}

TEST(CacheLevel, StreamingBeyondCapacityMissesEverything) {
  CacheLevel cache(tiny_cache());  // 512 B capacity
  // Stream 4 KB twice: second pass still misses every line (LRU streaming).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 4096; addr += 64) cache.access(addr);
  }
  EXPECT_EQ(cache.misses(), 128u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheLevel, WorkingSetWithinCapacityFullyHitsOnSecondPass) {
  CacheLevel cache(tiny_cache());
  for (std::uint64_t addr = 0; addr < 512; addr += 64) cache.access(addr);
  cache.reset_stats();
  for (std::uint64_t addr = 0; addr < 512; addr += 64) cache.access(addr);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.hits(), 8u);
}

TEST(MemoryHierarchy, L1MissProbesL2) {
  MemoryHierarchy mem(tiny_cache(), CacheConfig{2048, 64, 4});
  mem.access(0x0000, 8);
  EXPECT_EQ(mem.l1_misses(), 1u);
  EXPECT_EQ(mem.l2_misses(), 1u);
  mem.access(0x0000, 8);  // L1 hit, L2 untouched
  EXPECT_EQ(mem.l1_misses(), 1u);
  EXPECT_EQ(mem.l2_misses(), 1u);
}

TEST(MemoryHierarchy, L2CatchesL1CapacityMisses) {
  // L1 512 B, L2 8 KB: a 4 KB working set thrashes L1 but lives in L2.
  MemoryHierarchy mem(tiny_cache(), CacheConfig{8192, 64, 8});
  for (std::uint64_t addr = 0; addr < 4096; addr += 64) mem.access(addr, 8);
  const auto l2_after_first = mem.l2_misses();
  for (std::uint64_t addr = 0; addr < 4096; addr += 64) mem.access(addr, 8);
  EXPECT_GT(mem.l1_misses(), 64u);             // L1 missed on the second pass too
  EXPECT_EQ(mem.l2_misses(), l2_after_first);  // but L2 absorbed all of them
}

TEST(MemoryHierarchy, StraddlingAccessTouchesBothLines) {
  MemoryHierarchy mem(tiny_cache(), CacheConfig{2048, 64, 4});
  mem.access(60, 8);  // spans lines 0 and 1
  EXPECT_EQ(mem.l1_misses(), 2u);
  EXPECT_EQ(mem.accesses(), 2u);
}

TEST(MemoryHierarchy, ZeroByteAccessRejected) {
  MemoryHierarchy mem(tiny_cache(), CacheConfig{2048, 64, 4});
  EXPECT_THROW(mem.access(0, 0), ContractViolation);
}

TEST(MemoryHierarchy, OpteronGeometryAcceptsDefaultConfigs) {
  MemoryHierarchy mem(CacheConfig{64 * 1024, 64, 2},
                      CacheConfig{1024 * 1024, 64, 16});
  mem.access(0x12345678, 24);
  EXPECT_GE(mem.accesses(), 1u);
}

}  // namespace
}  // namespace emdpa::opteron
