#include <gtest/gtest.h>

#include <cmath>

#include "cpu/opteron_backend.h"
#include "md/backend.h"

namespace emdpa::opteron {
namespace {

md::RunConfig small_config(std::size_t n = 128, int steps = 5) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(OpteronBackend, NameAndPrecision) {
  OpteronBackend backend;
  EXPECT_EQ(backend.name(), "opteron-2.2ghz");
  EXPECT_EQ(backend.precision(), "double");
}

TEST(OpteronBackend, ProducesEnergiesPerStepPlusPrime) {
  OpteronBackend backend;
  const auto r = backend.run(small_config(128, 5));
  EXPECT_EQ(r.energies.size(), 6u);
  EXPECT_EQ(r.step_times.size(), 5u);
}

TEST(OpteronBackend, PhysicsMatchesHostReference) {
  OpteronBackend opteron;
  md::HostReferenceBackend host;
  const auto cfg = small_config(128, 5);
  const auto a = opteron.run(cfg);
  const auto b = host.run(cfg);
  ASSERT_EQ(a.energies.size(), b.energies.size());
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    EXPECT_NEAR(a.energies[s].kinetic, b.energies[s].kinetic, 1e-9);
    EXPECT_NEAR(a.energies[s].potential, b.energies[s].potential, 1e-9);
  }
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_NEAR(a.final_state.positions()[i].x, b.final_state.positions()[i].x,
                1e-9);
  }
}

TEST(OpteronBackend, DeviceTimeEqualsSumOfStepTimes) {
  OpteronBackend backend;
  const auto r = backend.run(small_config(128, 4));
  ModelTime sum;
  for (const auto& t : r.step_times) sum += t;
  EXPECT_NEAR(sum.to_seconds(), r.device_time.to_seconds(), 1e-12);
}

TEST(OpteronBackend, StepTimesRoughlyUniform) {
  OpteronBackend backend;
  const auto r = backend.run(small_config(256, 5));
  const double first = r.step_times.front().to_seconds();
  for (const auto& t : r.step_times) {
    EXPECT_NEAR(t.to_seconds(), first, 0.3 * first);
  }
}

TEST(OpteronBackend, QuadraticScalingOfDeviceTime) {
  OpteronBackend backend;
  const auto small = backend.run(small_config(128, 2));
  const auto big = backend.run(small_config(512, 2));
  const double ratio = big.device_time / small.device_time;
  EXPECT_GT(ratio, 10.0);  // ~16x pair work
  EXPECT_LT(ratio, 24.0);
}

TEST(OpteronBackend, ReportsCacheCounters) {
  OpteronBackend backend;
  const auto r = backend.run(small_config(128, 2));
  EXPECT_GT(r.ops.get("opteron.flops"), 0u);
  // Cold-start misses at least load the arrays once.
  EXPECT_GT(r.ops.get("opteron.l1_misses"), 0u);
}

TEST(OpteronBackend, BreakdownIsAllCompute) {
  OpteronBackend backend;
  const auto r = backend.run(small_config(128, 2));
  EXPECT_NEAR(r.breakdown_component("compute").to_seconds(),
              r.device_time.to_seconds(), 1e-12);
}

}  // namespace
}  // namespace emdpa::opteron
