#include <gtest/gtest.h>

#include "gpusim/md_shader.h"
#include "gpusim/shader_compiler.h"

namespace emdpa::gpu {
namespace {

TEST(ShaderCompiler, AcceptsTheMdShader) {
  MdAccelShader shader({});
  ShaderCompiler compiler;
  const CompiledShader compiled =
      compiler.compile(shader, shader.static_instruction_estimate());
  EXPECT_EQ(compiled.program, &shader);
  EXPECT_GT(compiled.compile_time.to_seconds(), 0.0);
}

TEST(ShaderCompiler, RejectsOversizedPrograms) {
  MdAccelShader shader({});
  ShaderCompiler compiler;
  EXPECT_THROW(compiler.compile(shader, 100000), ContractViolation);
}

TEST(ShaderCompiler, RejectsTooManySamplers) {
  class GreedyShader final : public ShaderProgram {
   public:
    std::string name() const override { return "greedy"; }
    std::size_t input_count() const override { return 17; }
    emdpa::Vec4f execute(ShaderContext&) override { return {}; }
  };
  GreedyShader shader;
  ShaderCompiler compiler;
  EXPECT_THROW(compiler.compile(shader, 10), ContractViolation);
}

TEST(ShaderCompiler, DynamicLimitEnforced) {
  ShaderCompiler compiler;
  EXPECT_NO_THROW(compiler.check_dynamic_limit(1000));
  EXPECT_THROW(compiler.check_dynamic_limit(1ull << 30), ContractViolation);
}

TEST(ShaderCompiler, CustomLimits) {
  ShaderLimits limits;
  limits.max_static_instructions = 8;
  ShaderCompiler compiler(limits);
  MdAccelShader shader({});
  EXPECT_THROW(compiler.compile(shader, 48), ContractViolation);
}

}  // namespace
}  // namespace emdpa::gpu
