#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/reduction.h"

namespace emdpa::gpu {
namespace {

class ReductionTest : public ::testing::Test {
 protected:
  GpuDevice device_;
  PcieBus pcie_;
};

TEST_F(ReductionTest, SumsWComponent) {
  Texture2D values = Texture2D::for_elements(100, "v");
  float expected = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    values.host_data()[i] = {0, 0, 0, float(i)};
    expected += float(i);
  }
  const ReductionOutcome r = reduce_w_on_gpu(device_, pcie_, values, 100);
  EXPECT_FLOAT_EQ(r.sum, expected);
}

TEST_F(ReductionTest, SingleElementNeedsNoPass) {
  Texture2D values = Texture2D::for_elements(1, "v");
  values.host_data()[0] = {0, 0, 0, 42.0f};
  const ReductionOutcome r = reduce_w_on_gpu(device_, pcie_, values, 1);
  EXPECT_FLOAT_EQ(r.sum, 42.0f);
  EXPECT_EQ(r.passes, 0);
}

TEST_F(ReductionTest, PassCountIsLogBase4) {
  Texture2D values = Texture2D::for_elements(2048, "v");
  const ReductionOutcome r = reduce_w_on_gpu(device_, pcie_, values, 2048);
  // 2048 -> 512 -> 128 -> 32 -> 8 -> 2 -> 1: 6 passes.
  EXPECT_EQ(r.passes, 6);
}

TEST_F(ReductionTest, EveryPassPaysDispatchOverhead) {
  Texture2D values = Texture2D::for_elements(2048, "v");
  const ReductionOutcome r = reduce_w_on_gpu(device_, pcie_, values, 2048);
  const GpuDeviceConfig cfg;
  EXPECT_GE(r.gpu_time.to_seconds(),
            6 * cfg.pass_dispatch_overhead.to_seconds());
}

TEST_F(ReductionTest, HandlesNonPowerOfFourCounts) {
  Texture2D values = Texture2D::for_elements(37, "v");
  float expected = 0;
  for (std::size_t i = 0; i < 37; ++i) {
    values.host_data()[i] = {0, 0, 0, 1.5f};
    expected += 1.5f;
  }
  const ReductionOutcome r = reduce_w_on_gpu(device_, pcie_, values, 37);
  EXPECT_FLOAT_EQ(r.sum, expected);
}

TEST_F(ReductionTest, CountOutOfRangeThrows) {
  Texture2D values = Texture2D::for_elements(16, "v");
  EXPECT_THROW(reduce_w_on_gpu(device_, pcie_, values, 0), ContractViolation);
  EXPECT_THROW(reduce_w_on_gpu(device_, pcie_, values, 1000), ContractViolation);
}

TEST_F(ReductionTest, SourceTextureUntouched) {
  Texture2D values = Texture2D::for_elements(64, "v");
  for (std::size_t i = 0; i < 64; ++i) values.host_data()[i] = {1, 2, 3, 4};
  reduce_w_on_gpu(device_, pcie_, values, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(values.host_data()[i], (emdpa::Vec4f{1, 2, 3, 4}));
  }
}

}  // namespace
}  // namespace emdpa::gpu
