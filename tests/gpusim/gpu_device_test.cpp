#include <gtest/gtest.h>

#include "gpusim/gpu_device.h"

namespace emdpa::gpu {
namespace {

/// Doubles every texel of its single input.
class DoubleShader final : public ShaderProgram {
 public:
  std::string name() const override { return "double"; }
  std::size_t input_count() const override { return 1; }
  emdpa::Vec4f execute(ShaderContext& ctx) override {
    const emdpa::Vec4f v = ctx.fetch(0, ctx.output_texel());
    ctx.count_vec4(1);
    return v * 2.0f;
  }
};

class GpuDeviceTest : public ::testing::Test {
 protected:
  GpuDevice device_;
  DoubleShader shader_;
};

TEST_F(GpuDeviceTest, PassComputesPerTexelResults) {
  Texture2D in(4, 4, "in"), out(4, 4, "out");
  for (std::size_t i = 0; i < 16; ++i) {
    in.host_data()[i] = {float(i), 0, 0, 1};
  }
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  device_.run_pass(compiled, {&in}, out, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out.host_data()[i].x, 2.0f * float(i));
    EXPECT_EQ(out.host_data()[i].w, 2.0f);
  }
}

TEST_F(GpuDeviceTest, TexturesUnboundAfterPass) {
  Texture2D in(2, 2, "in"), out(2, 2, "out");
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  device_.run_pass(compiled, {&in}, out, 4);
  EXPECT_EQ(in.binding(), TextureBinding::kUnbound);
  EXPECT_EQ(out.binding(), TextureBinding::kUnbound);
}

TEST_F(GpuDeviceTest, SameTextureAsInputAndOutputRejected) {
  // The stream restriction: an array is input or output, never both.
  Texture2D tex(2, 2, "both");
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  EXPECT_THROW(device_.run_pass(compiled, {&tex}, tex, 4), ContractViolation);
}

TEST_F(GpuDeviceTest, InputCountMustMatchShader) {
  Texture2D in(2, 2, "in"), out(2, 2, "out");
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  EXPECT_THROW(device_.run_pass(compiled, {}, out, 4), ContractViolation);
  EXPECT_THROW(device_.run_pass(compiled, {&in, &in}, out, 4),
               ContractViolation);
}

TEST_F(GpuDeviceTest, MoreInstancesThanTexelsRejected) {
  Texture2D in(2, 2, "in"), out(2, 2, "out");
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  EXPECT_THROW(device_.run_pass(compiled, {&in}, out, 5), ContractViolation);
}

TEST_F(GpuDeviceTest, WorkAggregatesAcrossInstances) {
  Texture2D in(4, 4, "in"), out(4, 4, "out");
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  const PassResult r = device_.run_pass(compiled, {&in}, out, 16);
  EXPECT_EQ(r.work.fetches, 16u);
  EXPECT_EQ(r.work.alu_vec4, 16u);
}

TEST_F(GpuDeviceTest, ComputeTimeScalesWithInstances) {
  Texture2D in(64, 64, "in"), out(64, 64, "out");
  const CompiledShader compiled = device_.compiler().compile(shader_, 4);
  const PassResult small = device_.run_pass(compiled, {&in}, out, 64);
  const PassResult big = device_.run_pass(compiled, {&in}, out, 4096);
  EXPECT_NEAR(big.compute_time.to_seconds() / small.compute_time.to_seconds(),
              64.0, 1.0);
  // Dispatch overhead is fixed.
  EXPECT_EQ(small.dispatch_time, big.dispatch_time);
}

TEST_F(GpuDeviceTest, MorePipelinesRunFaster) {
  GpuDeviceConfig wide;
  wide.pixel_pipelines = 48;
  GpuDevice fat(wide);
  Texture2D in(32, 32, "in"), out(32, 32, "out");
  const CompiledShader c1 = device_.compiler().compile(shader_, 4);
  const CompiledShader c2 = fat.compiler().compile(shader_, 4);
  const auto slow = device_.run_pass(c1, {&in}, out, 1024);
  const auto fast = fat.run_pass(c2, {&in}, out, 1024);
  EXPECT_NEAR(slow.compute_time.to_seconds() / fast.compute_time.to_seconds(),
              2.0, 0.01);
}

TEST(GpuDeviceConfig, RejectsZeroPipelines) {
  GpuDeviceConfig cfg;
  cfg.pixel_pipelines = 0;
  EXPECT_THROW(GpuDevice device(cfg), ContractViolation);
}

}  // namespace
}  // namespace emdpa::gpu
