#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/gpu_backend.h"
#include "md/backend.h"

namespace emdpa::gpu {
namespace {

md::RunConfig small_config(std::size_t n = 128, int steps = 3) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(GpuBackend, NameAndPrecision) {
  EXPECT_EQ(GpuBackend().name(), "gpu-7900gtx");
  EXPECT_EQ(GpuBackend().precision(), "single");
  GpuRunOptions red;
  red.pe_strategy = PeStrategy::kGpuReduction;
  EXPECT_EQ(GpuBackend(red).name(), "gpu-7900gtx[reduction]");
}

TEST(GpuBackend, RejectsShiftedPotential) {
  auto cfg = small_config();
  cfg.lj.shifted = true;
  GpuBackend backend;
  EXPECT_THROW(backend.run(cfg), ContractViolation);
}

TEST(GpuBackend, ShapesOfResult) {
  const auto r = GpuBackend().run(small_config(128, 4));
  EXPECT_EQ(r.energies.size(), 5u);
  EXPECT_EQ(r.step_times.size(), 4u);
  EXPECT_GT(r.device_time.to_seconds(), 0.0);
}

TEST(GpuBackend, PhysicsTracksHostReference) {
  const auto cfg = small_config(128, 4);
  const auto a = GpuBackend().run(cfg);
  const auto b = md::HostReferenceBackend().run(cfg);
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    const double scale = std::fabs(b.energies[s].potential) + 1.0;
    EXPECT_NEAR(a.energies[s].potential, b.energies[s].potential, 1e-3 * scale);
  }
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    const double scale = std::fabs(b.final_state.positions()[i].x) + 1.0;
    EXPECT_NEAR(a.final_state.positions()[i].x, b.final_state.positions()[i].x,
                1e-2 * scale);
  }
}

TEST(GpuBackend, StartupReportedButExcludedFromSteps) {
  const auto r = GpuBackend().run(small_config(64, 2));
  const double startup = r.breakdown_component("startup").to_seconds();
  EXPECT_GT(startup, 0.1);  // context + JIT is a sizeable one-time cost
  ModelTime steps_sum;
  for (const auto& t : r.step_times) steps_sum += t;
  EXPECT_NEAR(steps_sum.to_seconds(), r.device_time.to_seconds(), 1e-12);
}

TEST(GpuBackend, TransfersEveryStep) {
  const auto r = GpuBackend().run(small_config(64, 3));
  // Prime + 3 steps = 4 uploads and 4 readbacks of 64 texels.
  EXPECT_EQ(r.ops.get("pcie.bytes_up"), 4u * 64u * 16u);
  EXPECT_EQ(r.ops.get("pcie.bytes_down"), 4u * 64u * 16u);
  EXPECT_EQ(r.ops.get("gpu.passes"), 4u);
}

TEST(GpuBackend, ReductionStrategyCostsMore) {
  const auto cfg = small_config(256, 3);
  GpuRunOptions readback, reduction;
  reduction.pe_strategy = PeStrategy::kGpuReduction;
  const auto a = GpuBackend(readback).run(cfg);
  const auto b = GpuBackend(reduction).run(cfg);
  EXPECT_GT(b.device_time.to_seconds(), 1.5 * a.device_time.to_seconds());
  EXPECT_GT(b.ops.get("gpu.reduction_passes"), 0u);
}

TEST(GpuBackend, ReductionStrategySamePhysicsDifferentSumOrder) {
  const auto cfg = small_config(128, 3);
  GpuRunOptions readback, reduction;
  reduction.pe_strategy = PeStrategy::kGpuReduction;
  const auto a = GpuBackend(readback).run(cfg);
  const auto b = GpuBackend(reduction).run(cfg);
  // Trajectories identical (accelerations don't depend on the PE path).
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
  // PE equal up to float summation order.
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    const double scale = std::fabs(a.energies[s].potential) + 1.0;
    EXPECT_NEAR(a.energies[s].potential, b.energies[s].potential, 1e-4 * scale);
  }
}

TEST(GpuBackend, SmallSystemsDominatedByFixedCosts) {
  // Per-step time barely moves between 16 and 64 atoms: dispatch + readback
  // sync dominate (the Fig-7 small-N regime).
  const auto small = GpuBackend().run(small_config(16, 2));
  const auto big = GpuBackend().run(small_config(64, 2));
  EXPECT_LT(big.device_time.to_seconds() / small.device_time.to_seconds(), 1.5);
}

TEST(GpuBackend, LargeSystemsScaleQuadratically) {
  const auto small = GpuBackend().run(small_config(1024, 2));
  const auto big = GpuBackend().run(small_config(2048, 2));
  EXPECT_GT(big.device_time.to_seconds() / small.device_time.to_seconds(), 2.5);
}

TEST(PcieBus, TransferAccounting) {
  PcieBus bus;
  bus.upload(1000);
  bus.upload(500);
  bus.readback(2000);
  EXPECT_EQ(bus.bytes_uploaded(), 1500u);
  EXPECT_EQ(bus.bytes_read_back(), 2000u);
  EXPECT_EQ(bus.uploads(), 2u);
  EXPECT_EQ(bus.readbacks(), 1u);
}

TEST(PcieBus, ReadbackSlowerThanUpload) {
  PcieBus bus;
  const double up = bus.upload(1 << 20).to_seconds();
  const double down = bus.readback(1 << 20).to_seconds();
  EXPECT_GT(down, up);
}

}  // namespace
}  // namespace emdpa::gpu
