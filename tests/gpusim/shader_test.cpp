#include <gtest/gtest.h>

#include "gpusim/shader.h"

namespace emdpa::gpu {
namespace {

TEST(ShaderContext, FetchReadsBoundInputAndCounts) {
  Texture2D tex(2, 2, "in");
  tex.host_data()[2] = {5, 6, 7, 8};
  tex.bind(TextureBinding::kInput);

  std::vector<const Texture2D*> inputs = {&tex};
  GpuWork work;
  ShaderContext ctx(inputs, /*output_texel=*/1, work);
  EXPECT_EQ(ctx.fetch(0, 2), (emdpa::Vec4f{5, 6, 7, 8}));
  EXPECT_EQ(work.fetches, 1u);
  EXPECT_EQ(ctx.output_texel(), 1u);
}

TEST(ShaderContext, BadInputSlotThrows) {
  std::vector<const Texture2D*> inputs;
  GpuWork work;
  ShaderContext ctx(inputs, 0, work);
  EXPECT_THROW(ctx.fetch(0, 0), ContractViolation);
}

TEST(ShaderContext, WorkCountersAccumulate) {
  std::vector<const Texture2D*> inputs;
  GpuWork work;
  ShaderContext ctx(inputs, 0, work);
  ctx.count_vec4(3);
  ctx.count_scalar(2);
  ctx.count_vec4(1);
  EXPECT_EQ(work.alu_vec4, 4u);
  EXPECT_EQ(work.alu_scalar, 2u);
}

TEST(GpuWork, PlusEquals) {
  GpuWork a, b;
  a.alu_vec4 = 1;
  a.fetches = 2;
  b.alu_vec4 = 10;
  b.alu_scalar = 5;
  a += b;
  EXPECT_EQ(a.alu_vec4, 11u);
  EXPECT_EQ(a.alu_scalar, 5u);
  EXPECT_EQ(a.fetches, 2u);
}

}  // namespace
}  // namespace emdpa::gpu
