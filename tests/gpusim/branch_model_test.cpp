#include <gtest/gtest.h>

#include "core/error.h"
#include "gpusim/branch_model.h"
#include "md/workload.h"

namespace emdpa::gpu {
namespace {

std::vector<emdpa::Vec4f> fluid_positions(std::size_t n, md::PeriodicBoxF* box) {
  md::WorkloadSpec spec;
  spec.n_atoms = n;
  md::Workload w = md::make_lattice_workload(spec);
  *box = md::PeriodicBoxF(static_cast<float>(w.box.edge()));
  std::vector<emdpa::Vec4f> out;
  for (const auto& p : w.system.positions()) {
    out.emplace_back(emdpa::vec_cast<float>(w.box.wrap(p)), 0.0f);
  }
  return out;
}

TEST(BranchModel, ValidatesBatchSize) {
  md::PeriodicBoxF box(1.0f);
  std::vector<emdpa::Vec4f> positions(4);
  EXPECT_THROW(estimate_branching_pass_work(positions, box,
                                            md::LjParamsT<float>{}, 0),
               ContractViolation);
}

TEST(BranchModel, BatchOfOneTakesExactlyPerAtomInteractions) {
  // 256 atoms: the box is large enough that most candidates are outside the
  // cutoff (interacting fraction ~22%), unlike tiny boxes where nearly
  // everything interacts.
  md::PeriodicBoxF box(1.0f);
  const auto positions = fluid_positions(256, &box);
  const auto lj = md::LjParams{}.cast<float>();
  const auto est = estimate_branching_pass_work(positions, box, lj, 1);
  // With one fragment per batch, the LJ path runs exactly once per
  // interacting ordered pair.
  EXPECT_EQ(est.batch_iterations, 256u * 256u);
  EXPECT_GT(est.lj_blocks_executed, 0u);
  EXPECT_LT(est.taken_fraction(), 0.5);
}

TEST(BranchModel, TakenFractionGrowsWithBatchSize) {
  md::PeriodicBoxF box(1.0f);
  const auto positions = fluid_positions(128, &box);
  const auto lj = md::LjParams{}.cast<float>();
  double previous = 0.0;
  for (const std::size_t batch : {1u, 8u, 32u, 128u}) {
    const auto est = estimate_branching_pass_work(positions, box, lj, batch);
    EXPECT_GE(est.taken_fraction(), previous) << "batch " << batch;
    previous = est.taken_fraction();
  }
}

TEST(BranchModel, WholeSystemBatchAlwaysTakes) {
  // One batch spanning all atoms: every j has some interacting partner in a
  // dense fluid.
  md::PeriodicBoxF box(1.0f);
  const auto positions = fluid_positions(128, &box);
  const auto lj = md::LjParams{}.cast<float>();
  const auto est = estimate_branching_pass_work(positions, box, lj, 128);
  EXPECT_DOUBLE_EQ(est.taken_fraction(), 1.0);
}

TEST(BranchModel, PrologueChargedForEveryCandidate) {
  md::PeriodicBoxF box(1.0f);
  const auto positions = fluid_positions(64, &box);
  const auto lj = md::LjParams{}.cast<float>();
  MdShaderOpSplit split;
  const auto est = estimate_branching_pass_work(positions, box, lj, 16, split);
  EXPECT_EQ(est.work.fetches, 64u * 64u);
  EXPECT_GE(est.work.alu_vec4, 64u * 64u * split.prologue_vec4);
}

TEST(BranchModel, IsolatedGasNeverTakesTheLjPath) {
  // Two atoms far apart in a huge box: no pair interacts (the self-pair is
  // excluded).
  md::PeriodicBoxF box(100.0f);
  std::vector<emdpa::Vec4f> positions = {{1, 1, 1, 0}, {50, 50, 50, 0}};
  const auto lj = md::LjParams{}.cast<float>();
  const auto est = estimate_branching_pass_work(positions, box, lj, 2);
  EXPECT_EQ(est.lj_blocks_executed, 0u);
}

}  // namespace
}  // namespace emdpa::gpu
