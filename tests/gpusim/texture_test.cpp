#include <gtest/gtest.h>

#include "core/error.h"
#include "gpusim/texture.h"

namespace emdpa::gpu {
namespace {

TEST(Texture2D, RejectsEmptyDimensions) {
  EXPECT_THROW(Texture2D(0, 4, "t"), ContractViolation);
  EXPECT_THROW(Texture2D(4, 0, "t"), ContractViolation);
}

TEST(Texture2D, ForElementsCoversCount) {
  for (std::size_t count : {1u, 2u, 16u, 17u, 100u, 2048u}) {
    const Texture2D t = Texture2D::for_elements(count, "t");
    EXPECT_GE(t.texel_count(), count);
    // Square-ish: width within 1 of the height requirement.
    EXPECT_LE(t.width() * (t.height() - 1), count);
  }
}

TEST(Texture2D, BytesAre16PerTexel) {
  const Texture2D t(4, 4, "t");
  EXPECT_EQ(t.bytes(), 16u * 16u);
}

TEST(Texture2D, HostAccessWhenUnbound) {
  Texture2D t(2, 2, "t");
  t.host_data()[3] = {1, 2, 3, 4};
  EXPECT_EQ(t.host_data()[3], (emdpa::Vec4f{1, 2, 3, 4}));
}

TEST(Texture2D, CannotBindTwice) {
  Texture2D t(2, 2, "t");
  t.bind(TextureBinding::kInput);
  EXPECT_THROW(t.bind(TextureBinding::kRenderTarget), ContractViolation);
  t.unbind();
  EXPECT_NO_THROW(t.bind(TextureBinding::kRenderTarget));
}

TEST(Texture2D, HostAccessWhileBoundThrows) {
  Texture2D t(2, 2, "t");
  t.bind(TextureBinding::kInput);
  EXPECT_THROW(t.host_data(), ContractViolation);
}

TEST(Texture2D, SampleRequiresInputBinding) {
  Texture2D t(2, 2, "t");
  EXPECT_THROW(t.sample(0), ContractViolation);
  t.bind(TextureBinding::kRenderTarget);
  EXPECT_THROW(t.sample(0), ContractViolation);
  t.unbind();
  t.bind(TextureBinding::kInput);
  EXPECT_NO_THROW(t.sample(0));
}

TEST(Texture2D, WriteRequiresRenderTargetBinding) {
  Texture2D t(2, 2, "t");
  EXPECT_THROW(t.write(0, {}), ContractViolation);
  t.bind(TextureBinding::kInput);
  EXPECT_THROW(t.write(0, {}), ContractViolation);
  t.unbind();
  t.bind(TextureBinding::kRenderTarget);
  EXPECT_NO_THROW(t.write(0, {1, 2, 3, 4}));
  t.unbind();
  EXPECT_EQ(t.host_data()[0], (emdpa::Vec4f{1, 2, 3, 4}));
}

TEST(Texture2D, OutOfRangeAccessThrows) {
  Texture2D t(2, 2, "t");
  t.bind(TextureBinding::kInput);
  EXPECT_THROW(t.sample(4), ContractViolation);
  t.unbind();
  t.bind(TextureBinding::kRenderTarget);
  EXPECT_THROW(t.write(4, {}), ContractViolation);
}

}  // namespace
}  // namespace emdpa::gpu
