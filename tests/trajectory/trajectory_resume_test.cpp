// Resume bitwise-equivalence: a run checkpointed at its midpoint and resumed
// from that checkpoint must finish bit-for-bit identical to the run that
// kept going — across every host kernel and thread count.
//
// Two properties make this hold and both are exercised here: save() is a
// synchronisation point (it invalidates the neighbour list, so the
// continuing run and the resumed run both rebuild from exactly the saved
// positions), and v2 checkpoints carry the potential energy so resume
// trusts the stored accelerations instead of re-priming.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/error.h"
#include "core/thread_pool.h"
#include "md/simulation.h"

namespace emdpa::md {
namespace {

struct ResumeCase {
  const char* name;
  SimKernel kernel;
  bool pooled;
};

class TrajectoryResumeTest : public ::testing::TestWithParam<ResumeCase> {};

Simulation::Options melt_options(const ResumeCase& c, ThreadPool* pool) {
  Simulation::Options options;
  options.workload.n_atoms = 256;
  options.kernel = c.kernel;
  options.skin = 0.3;
  options.pool = c.pooled ? pool : nullptr;
  return options;
}

TEST_P(TrajectoryResumeTest, MidpointResumeIsBitIdentical) {
  const ResumeCase& c = GetParam();
  ThreadPool pool(4);
  const Simulation::Options options = melt_options(c, &pool);
  constexpr int kTotalSteps = 500;
  constexpr int kCheckpointStep = 250;

  // The uninterrupted run still saves at the midpoint: checkpointing is a
  // synchronisation point, so equivalence is defined against a run with the
  // same checkpoint schedule.
  Simulation uninterrupted(options);
  uninterrupted.run(kCheckpointStep);
  std::stringstream checkpoint;
  uninterrupted.save(checkpoint);
  uninterrupted.run(kTotalSteps - kCheckpointStep);

  Simulation resumed = Simulation::resume(checkpoint, options);
  ASSERT_EQ(resumed.current_step(), kCheckpointStep);
  resumed.run(kTotalSteps - kCheckpointStep);

  ASSERT_EQ(resumed.system().size(), uninterrupted.system().size());
  for (std::size_t i = 0; i < resumed.system().size(); ++i) {
    EXPECT_EQ(resumed.system().positions()[i],
              uninterrupted.system().positions()[i])
        << "position diverged at atom " << i;
    EXPECT_EQ(resumed.system().velocities()[i],
              uninterrupted.system().velocities()[i])
        << "velocity diverged at atom " << i;
    EXPECT_EQ(resumed.system().accelerations()[i],
              uninterrupted.system().accelerations()[i])
        << "acceleration diverged at atom " << i;
  }
  EXPECT_EQ(resumed.last_energies().kinetic,
            uninterrupted.last_energies().kinetic);
  EXPECT_EQ(resumed.last_energies().potential,
            uninterrupted.last_energies().potential);
}

TEST_P(TrajectoryResumeTest, ResumeDoesNotRePrime) {
  const ResumeCase& c = GetParam();
  ThreadPool pool(4);
  const Simulation::Options options = melt_options(c, &pool);

  Simulation original(options);
  original.run(50);
  std::stringstream checkpoint;
  original.save(checkpoint);

  Simulation resumed = Simulation::resume(checkpoint, options);
  // A v2 resume restores the primed state instead of re-evaluating forces:
  // the energies must match the instant of the save bit-for-bit.
  EXPECT_EQ(resumed.last_energies().kinetic, original.last_energies().kinetic);
  EXPECT_EQ(resumed.last_energies().potential,
            original.last_energies().potential);
  EXPECT_EQ(resumed.force_evaluations(), 0u);
}

TEST(TrajectoryLangevinResume, MidpointResumeIsBitIdentical) {
  // The Langevin thermostat's RNG state rides in the v3 checkpoint: a
  // resumed run re-attaching the thermostat — even with a DIFFERENT seed —
  // continues the checkpointed noise sequence, so the stochastic trajectory
  // stays bit-identical to the uninterrupted one.
  Simulation::Options options;
  options.workload.n_atoms = 256;
  constexpr int kTotalSteps = 300;
  constexpr int kCheckpointStep = 150;

  Simulation uninterrupted(options);
  uninterrupted.set_thermostat(LangevinThermostat(1.2, 2.0, 77));
  uninterrupted.run(kCheckpointStep);
  std::stringstream checkpoint;
  uninterrupted.save(checkpoint);
  uninterrupted.run(kTotalSteps - kCheckpointStep);

  Simulation resumed = Simulation::resume(checkpoint, options);
  // Seed 999: the restored checkpoint state must fully override it.
  resumed.set_thermostat(LangevinThermostat(1.2, 2.0, 999));
  resumed.run(kTotalSteps - kCheckpointStep);

  ASSERT_EQ(resumed.system().size(), uninterrupted.system().size());
  for (std::size_t i = 0; i < resumed.system().size(); ++i) {
    EXPECT_EQ(resumed.system().positions()[i],
              uninterrupted.system().positions()[i])
        << "position diverged at atom " << i;
    EXPECT_EQ(resumed.system().velocities()[i],
              uninterrupted.system().velocities()[i])
        << "velocity diverged at atom " << i;
  }
  EXPECT_EQ(resumed.last_energies().kinetic,
            uninterrupted.last_energies().kinetic);
  EXPECT_EQ(resumed.last_energies().potential,
            uninterrupted.last_energies().potential);
}

TEST(TrajectoryResumeConfig, KernelMismatchFailsLoudly) {
  // v3 checkpoints record the producing run's kernel/precision/ISA; resuming
  // under different arithmetic would silently fork the trajectory, so it
  // must throw unless explicitly overridden.
  Simulation::Options options;
  options.workload.n_atoms = 64;
  options.kernel = SimKernel::kSoaN2;

  Simulation sim(options);
  sim.run(20);
  std::stringstream checkpoint;
  sim.save(checkpoint);

  Simulation::Options mismatched = options;
  mismatched.kernel = SimKernel::kReference;
  EXPECT_THROW(Simulation::resume(checkpoint, mismatched), RuntimeFailure);
}

TEST(TrajectoryResumeConfig, IgnoreFlagOverridesTheMismatch) {
  Simulation::Options options;
  options.workload.n_atoms = 64;
  options.kernel = SimKernel::kSoaN2;

  Simulation sim(options);
  sim.run(20);
  std::stringstream checkpoint;
  sim.save(checkpoint);

  Simulation::Options mismatched = options;
  mismatched.kernel = SimKernel::kReference;
  mismatched.ignore_checkpoint_config = true;  // --resume-force
  Simulation resumed = Simulation::resume(checkpoint, mismatched);
  EXPECT_EQ(resumed.current_step(), 20);
  EXPECT_EQ(resumed.kernel(), SimKernel::kReference);
}

TEST(TrajectoryResumeConfig, MatchingConfigResumesQuietly) {
  Simulation::Options options;
  options.workload.n_atoms = 64;
  options.kernel = SimKernel::kSoaN2;

  Simulation sim(options);
  sim.run(20);
  std::stringstream checkpoint;
  sim.save(checkpoint);

  Simulation resumed = Simulation::resume(checkpoint, options);
  EXPECT_EQ(resumed.current_step(), 20);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, TrajectoryResumeTest,
    ::testing::Values(
        ResumeCase{"reference", SimKernel::kReference, false},
        ResumeCase{"cell_list", SimKernel::kCellList, false},
        ResumeCase{"soa_n2_serial", SimKernel::kSoaN2, false},
        ResumeCase{"soa_n2_pool", SimKernel::kSoaN2, true},
        ResumeCase{"neighbor_list_serial", SimKernel::kNeighborList, false},
        ResumeCase{"neighbor_list_pool", SimKernel::kNeighborList, true}),
    [](const ::testing::TestParamInfo<ResumeCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace emdpa::md
