// Batch bitwise-equivalence: two jobs time-sliced through the cooperative
// scheduler must each finish bit-for-bit identical to the same job run
// standalone — the scheduling layer is invisible to the physics.
//
// The equivalence reference is a standalone run with the scheduler's
// checkpoint schedule: every suspend is a CheckpointManager save, and save()
// is a bitwise synchronisation point (it invalidates the neighbour list), so
// the standalone mirror saves at the same slice boundaries into a discarded
// stream.  Proven at 1 and 8 threads over the shared pool, across the
// SoA-N^2 and neighbour-list kernels, with an uneven final slice.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "core/thread_pool.h"
#include "md/job_scheduler.h"
#include "md/simulation.h"

namespace emdpa::md {
namespace {

namespace fs = std::filesystem;

constexpr int kSteps = 110;   // slice 25 -> 25,25,25,25,10: uneven tail
constexpr int kSlice = 25;

JobSpec batch_job(const std::string& name, std::uint64_t seed,
                  HostKernel kernel) {
  JobSpec job;
  job.name = name;
  job.config.workload.n_atoms = 256;
  job.config.workload.seed = seed;
  job.config.steps = kSteps;
  job.config.host_kernel = kernel;
  return job;
}

/// The standalone reference: same config, same pool, same slice/save
/// cadence, no scheduler.
ParticleSystem standalone_final_state(const JobSpec& job, ThreadPool* pool) {
  Simulation sim(simulation_options_from(job.config, pool));
  while (sim.current_step() < job.config.steps) {
    const long remaining = job.config.steps - sim.current_step();
    sim.run(static_cast<int>(std::min<long>(kSlice, remaining)));
    std::ostringstream sink;
    sim.save(sink);
  }
  return sim.system();
}

void expect_bitwise_equal(const ParticleSystem& scheduled,
                          const ParticleSystem& standalone,
                          const std::string& name) {
  ASSERT_EQ(scheduled.size(), standalone.size()) << name;
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_EQ(scheduled.positions()[i], standalone.positions()[i])
        << name << ": position diverged at atom " << i;
    EXPECT_EQ(scheduled.velocities()[i], standalone.velocities()[i])
        << name << ": velocity diverged at atom " << i;
    EXPECT_EQ(scheduled.accelerations()[i], standalone.accelerations()[i])
        << name << ": acceleration diverged at atom " << i;
  }
}

class TrajectoryBatchTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrajectoryBatchTest, InterleavedJobsMatchStandaloneRuns) {
  const std::size_t threads = GetParam();
  ThreadPool pool(threads);

  // Two jobs with different seeds and different kernels, interleaving
  // round-robin (equal priority) with an in-flight cap that forces
  // evict-and-resume cycles on top of the interleaving.
  const JobSpec job_a = batch_job("soa", 1111, HostKernel::kN2);
  const JobSpec job_b = batch_job("list", 2222, HostKernel::kList);

  const std::string dir =
      (fs::path(::testing::TempDir()) /
       ("batch_equiv_" + std::to_string(threads) + "t"))
          .string();
  fs::remove_all(dir);

  SchedulerOptions options;
  options.slice_steps = kSlice;
  options.max_in_flight = 1;
  options.checkpoint_dir = dir;
  options.pool = &pool;

  const BatchResult batch = JobScheduler({job_a, job_b}, options).run();
  fs::remove_all(dir);

  ASSERT_EQ(batch.count(JobStatus::kCompleted), 2u);
  ASSERT_EQ(batch.jobs[0].steps_done, kSteps);
  ASSERT_EQ(batch.jobs[1].steps_done, kSteps);

  expect_bitwise_equal(batch.jobs[0].final_state,
                       standalone_final_state(job_a, &pool), "soa");
  expect_bitwise_equal(batch.jobs[1].final_state,
                       standalone_final_state(job_b, &pool), "list");
}

INSTANTIATE_TEST_SUITE_P(Threads, TrajectoryBatchTest,
                         ::testing::Values(std::size_t{1}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::to_string(info.param) + "threads";
                         });

}  // namespace
}  // namespace emdpa::md
