// Shared fixture for the trajectory-level regression suite: one canonical
// argon-melt run (the repo-wide default workload — LJ liquid at density
// 0.8442, T 1.44, seed 20070326) driven through md::Simulation with a
// selectable force kernel, recording per-step energies and final positions.
#pragma once

#include <cstddef>
#include <vector>

#include "core/thread_pool.h"
#include "md/simulation.h"

namespace emdpa::md::testing {

struct Trajectory {
  std::vector<StepEnergies> energies;  ///< [0] is the primed initial state
  std::vector<Vec3d> positions;        ///< after the last step
  std::uint64_t list_rebuilds = 0;
};

struct MeltSpec {
  std::size_t n_atoms = 256;
  int steps = 200;
  SimKernel kernel = SimKernel::kReference;
  ThreadPool* pool = nullptr;
  double skin = 0.3;
  SkinPolicy skin_policy = SkinPolicy::kHalfSkinDisplacement;
  double dt = 0.005;
  /// Spatial shard count for the list build (0 = flat; >0 resolves the
  /// kernel to kShardedList).
  std::size_t shards = 0;
  /// Force the SIMD kernels' instruction set; empty auto-dispatches.
  std::optional<simd::SimdType> isa;
  /// Numeric precision of the fast-path kernels (dp / sp / mixed).
  PrecisionMode precision = PrecisionMode::kDouble;
};

inline Trajectory run_melt(const MeltSpec& spec) {
  Simulation::Options options;
  options.workload.n_atoms = spec.n_atoms;
  options.dt = spec.dt;
  options.kernel = spec.kernel;
  options.shards = spec.shards;
  options.skin = spec.skin;
  options.skin_policy = spec.skin_policy;
  options.pool = spec.pool;
  options.simd_isa = spec.isa;
  options.precision = spec.precision;

  Simulation sim(options);
  Trajectory trajectory;
  trajectory.energies.reserve(static_cast<std::size_t>(spec.steps) + 1);
  trajectory.energies.push_back(sim.last_energies());
  sim.run(spec.steps, [&](long, const StepEnergies& e) {
    trajectory.energies.push_back(e);
  });
  trajectory.positions = sim.system().positions();
  trajectory.list_rebuilds = sim.list_rebuilds();
  return trajectory;
}

}  // namespace emdpa::md::testing
