// The skin-radius rebuild policy is load-bearing: these tests prove the
// displacement check triggers when it must, that the deliberately broken
// kNeverRebuild policy produces measurably wrong forces (so a regression
// that stops rebuilding cannot pass), and that structural invalidation
// (cutoff change) stays on regardless of policy.
#include <gtest/gtest.h>

#include <cmath>

#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/workload.h"
#include "trajectory_fixture.h"

namespace emdpa::md::testing {
namespace {

constexpr double kSkin = 0.3;

Workload melt_workload(std::size_t n_atoms) {
  WorkloadSpec spec;
  spec.n_atoms = n_atoms;
  return make_lattice_workload(spec);
}

TEST(SkinPolicy, FastMovingAtomForcesRebuild) {
  Workload w = melt_workload(256);
  const LjParams lj;
  ParallelNeighborListT<double> list(kSkin);
  list.build(w.system.positions(), w.box, lj.cutoff);
  EXPECT_FALSE(list.needs_rebuild(w.system.positions(), w.box, lj.cutoff));

  // A drift under skin/2 keeps the list valid...
  std::vector<Vec3d> moved = w.system.positions();
  moved[17].x += 0.4 * kSkin;
  EXPECT_FALSE(list.needs_rebuild(moved, w.box, lj.cutoff));

  // ...but one atom past skin/2 invalidates it, no matter how still the
  // other 255 are.
  moved[17].x += 0.2 * kSkin;
  EXPECT_TRUE(list.needs_rebuild(moved, w.box, lj.cutoff));
}

TEST(SkinPolicy, NeverRebuildIgnoresDisplacementButNotStructure) {
  Workload w = melt_workload(256);
  const LjParams lj;
  ParallelNeighborListT<double> list(kSkin, nullptr, 64, SkinPolicy::kNeverRebuild);
  list.build(w.system.positions(), w.box, lj.cutoff);

  std::vector<Vec3d> moved = w.system.positions();
  moved[17].x += 10.0 * kSkin;  // far beyond any displacement bound
  EXPECT_FALSE(list.needs_rebuild(moved, w.box, lj.cutoff));

  // Structural changes still invalidate: a list indexed for a different
  // cutoff or atom count is memory-unsafe, not merely stale.
  EXPECT_TRUE(list.needs_rebuild(moved, w.box, lj.cutoff * 0.8));
  moved.pop_back();
  EXPECT_TRUE(list.needs_rebuild(moved, w.box, lj.cutoff));
}

// The decisive physics test: walk a real trajectory, then evaluate forces
// at the step-100 configuration.  A kernel following the correct policy has
// rebuilt along the way and reproduces the exact N^2 potential energy; the
// kNeverRebuild kernel is still using the step-0 list and gets it wrong.
// Chaos plays no role here — both kernels see the SAME positions.
TEST(SkinPolicy, NeverRebuildProducesWrongForcesOnAMovedConfiguration) {
  const LjParams lj;

  // Positions after 100 correct steps.
  MeltSpec spec;
  spec.n_atoms = 256;
  spec.steps = 100;
  spec.kernel = SimKernel::kReference;
  const Trajectory moved = run_melt(spec);

  Workload w = melt_workload(256);
  ReferenceKernel reference;
  const double true_pe =
      reference.compute(moved.positions, w.box, lj, 1.0).potential_energy;

  auto stale_pe_with = [&](SkinPolicy policy) {
    NeighborListKernel::Options options;
    options.skin = kSkin;
    options.skin_policy = policy;
    NeighborListKernel kernel(options);
    // Build at the initial lattice, then jump to the moved configuration.
    kernel.compute(w.system.positions(), w.box, lj, 1.0);
    return kernel.compute(moved.positions, w.box, lj, 1.0).potential_energy;
  };

  const double correct_policy_pe =
      stale_pe_with(SkinPolicy::kHalfSkinDisplacement);
  const double never_rebuild_pe = stale_pe_with(SkinPolicy::kNeverRebuild);

  // The rebuilding kernel matches the N^2 truth to rounding error; the
  // frozen list misses pairs that wandered into the cutoff and is off by a
  // physically meaningful margin.
  EXPECT_LT(std::abs(correct_policy_pe - true_pe) / std::abs(true_pe), 1e-9);
  EXPECT_GT(std::abs(never_rebuild_pe - true_pe) / std::abs(true_pe), 1e-3);
}

TEST(SkinPolicy, SimulationReportsRebuildsUnderTheCorrectPolicy) {
  MeltSpec spec;
  spec.n_atoms = 256;
  spec.steps = 200;
  spec.kernel = SimKernel::kNeighborList;

  // The melt moves atoms fast: the half-skin policy must rebuild many
  // times, and the broken policy must keep the single initial build.
  const Trajectory correct = run_melt(spec);
  EXPECT_GT(correct.list_rebuilds, 10u);
  EXPECT_LT(correct.list_rebuilds, 201u);  // the skin buys SOME reuse

  spec.skin_policy = SkinPolicy::kNeverRebuild;
  const Trajectory frozen = run_melt(spec);
  EXPECT_EQ(frozen.list_rebuilds, 1u);
}

// The PR-2 stale-cutoff regression, driven through the kernel seam: a
// cutoff change between evaluations must rebuild and reprice, under either
// policy.
TEST(SkinPolicy, CutoffChangeRebuildsThroughTheKernelSeam) {
  Workload w = melt_workload(256);
  ReferenceKernel reference;

  for (const SkinPolicy policy :
       {SkinPolicy::kHalfSkinDisplacement, SkinPolicy::kNeverRebuild}) {
    NeighborListKernel::Options options;
    options.skin = kSkin;
    options.skin_policy = policy;
    NeighborListKernel kernel(options);

    LjParams wide;
    wide.cutoff = 2.5;
    kernel.compute(w.system.positions(), w.box, wide, 1.0);
    EXPECT_EQ(kernel.rebuilds(), 1u) << to_string(policy);

    LjParams narrow;
    narrow.cutoff = 2.0;
    const double pe =
        kernel.compute(w.system.positions(), w.box, narrow, 1.0)
            .potential_energy;
    EXPECT_EQ(kernel.rebuilds(), 2u) << to_string(policy);

    const double ref_pe =
        reference.compute(w.system.positions(), w.box, narrow, 1.0)
            .potential_energy;
    EXPECT_NEAR(pe, ref_pe, 1e-9 * std::abs(ref_pe)) << to_string(policy);
  }
}

}  // namespace
}  // namespace emdpa::md::testing
