// Golden-trajectory regression tests: the canonical argon-melt runs (64 and
// 256 atoms, 200 velocity-Verlet steps) against committed reference values,
// for every kernel the simulation seam can select.
//
// What is pinned, and why these observables:
//  * the initial energy — a pure function of the deterministic workload, so
//    it holds to ~1e-12 across compilers and SIMD widths;
//  * the TOTAL energy at step 200 — conservation makes total energy robust
//    to rounding-level trajectory divergence (measured spread between
//    default and -march=native builds: ~1e-14 relative), unlike the
//    kinetic/potential split, which chaos scrambles at long horizons;
//  * positions at a SHORT horizon (20 steps) — early enough that Lyapunov
//    growth has not amplified 1-ulp rounding differences above ~1e-12;
//  * the energy-drift envelope over the full 200 steps;
//  * bitwise self-consistency: the same run twice is identical.
//
// Tolerances carry >=1e4 margin over the measured cross-build spread.
#include <gtest/gtest.h>

#include <cmath>

#include "trajectory_fixture.h"

namespace emdpa::md::testing {
namespace {

struct GoldenMelt {
  std::size_t n_atoms;
  double e0_total;
  double e200_total;
  double max_rel_drift;  ///< measured envelope, asserted with ~2x headroom
  std::size_t probe_atoms[3];
  Vec3d pos20[3];
};

// Reference-kernel values, generated from the committed workload
// (density 0.8442, T 1.44, seed 20070326, dt 0.005).
constexpr GoldenMelt kGolden64 = {
    64,
    -182.91815465642151,
    -187.15869611748201,
    0.024,
    {0, 32, 63},
    {{0.67269372209051681, 0.52372220897867428, 0.56469707857985174},
     {2.6852824199732357, 0.58154221872694056, 0.57845809574558094},
     {3.7195854173875995, 3.7155341386564156, 3.6386386115721163}},
};

constexpr GoldenMelt kGolden256 = {
    256,
    499.16696695200750,
    523.21358035351841,
    0.052,
    {0, 128, 255},
    {{0.37479744184898933, 0.48528846939526116, 0.44535836959688269},
     {2.3535708363930330, 4.3712954210107444, 2.3624361403443870},
     {5.4280363216815921, 1.5133248792513372, 3.4458515738191990}},
};

constexpr double kEnergyRelTol = 1e-9;
constexpr double kPositionAbsTol = 1e-9;

constexpr SimKernel kAllKernels[] = {SimKernel::kReference, SimKernel::kSoaN2,
                                     SimKernel::kNeighborList,
                                     SimKernel::kCellList};

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max(std::abs(b), 1.0);
}

class GoldenTrajectory : public ::testing::TestWithParam<SimKernel> {};

TEST_P(GoldenTrajectory, MatchesCommittedEnergies64) {
  MeltSpec spec;
  spec.n_atoms = kGolden64.n_atoms;
  spec.kernel = GetParam();
  const Trajectory t = run_melt(spec);
  EXPECT_LT(rel_diff(t.energies.front().total(), kGolden64.e0_total),
            kEnergyRelTol);
  EXPECT_LT(rel_diff(t.energies.back().total(), kGolden64.e200_total),
            kEnergyRelTol);
}

TEST_P(GoldenTrajectory, MatchesCommittedEnergies256) {
  MeltSpec spec;
  spec.n_atoms = kGolden256.n_atoms;
  spec.kernel = GetParam();
  const Trajectory t = run_melt(spec);
  EXPECT_LT(rel_diff(t.energies.front().total(), kGolden256.e0_total),
            kEnergyRelTol);
  EXPECT_LT(rel_diff(t.energies.back().total(), kGolden256.e200_total),
            kEnergyRelTol);
}

TEST_P(GoldenTrajectory, MatchesCommittedPositionsAtShortHorizon) {
  for (const GoldenMelt& golden : {kGolden64, kGolden256}) {
    MeltSpec spec;
    spec.n_atoms = golden.n_atoms;
    spec.steps = 20;
    spec.kernel = GetParam();
    const Trajectory t = run_melt(spec);
    for (int k = 0; k < 3; ++k) {
      const Vec3d& p = t.positions[golden.probe_atoms[k]];
      EXPECT_NEAR(p.x, golden.pos20[k].x, kPositionAbsTol);
      EXPECT_NEAR(p.y, golden.pos20[k].y, kPositionAbsTol);
      EXPECT_NEAR(p.z, golden.pos20[k].z, kPositionAbsTol);
    }
  }
}

TEST_P(GoldenTrajectory, EnergyDriftStaysInsideTheEnvelope) {
  for (const GoldenMelt& golden : {kGolden64, kGolden256}) {
    MeltSpec spec;
    spec.n_atoms = golden.n_atoms;
    spec.kernel = GetParam();
    const Trajectory t = run_melt(spec);
    const double e0 = t.energies.front().total();
    for (const StepEnergies& e : t.energies) {
      EXPECT_LT(std::abs(e.total() - e0) / std::abs(e0),
                2.0 * golden.max_rel_drift);
    }
  }
}

TEST_P(GoldenTrajectory, RerunIsBitwiseIdentical) {
  MeltSpec spec;
  spec.n_atoms = 256;
  spec.steps = 60;
  spec.kernel = GetParam();
  const Trajectory a = run_melt(spec);
  const Trajectory b = run_melt(spec);
  ASSERT_EQ(a.energies.size(), b.energies.size());
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    EXPECT_EQ(a.energies[s].kinetic, b.energies[s].kinetic);
    EXPECT_EQ(a.energies[s].potential, b.energies[s].potential);
  }
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x);
    EXPECT_EQ(a.positions[i].y, b.positions[i].y);
    EXPECT_EQ(a.positions[i].z, b.positions[i].z);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GoldenTrajectory,
                         ::testing::ValuesIn(kAllKernels),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The kernels must also agree with EACH OTHER along the whole horizon, not
// just with the committed endpoints: per-step total energies within 1e-9
// relative of the reference kernel's.
TEST(GoldenTrajectory, KernelsAgreeStepByStep) {
  for (const std::size_t n : {std::size_t(64), std::size_t(256)}) {
    MeltSpec spec;
    spec.n_atoms = n;
    const Trajectory ref = run_melt(spec);
    for (const SimKernel kernel :
         {SimKernel::kSoaN2, SimKernel::kNeighborList, SimKernel::kCellList}) {
      spec.kernel = kernel;
      const Trajectory t = run_melt(spec);
      ASSERT_EQ(t.energies.size(), ref.energies.size());
      for (std::size_t s = 0; s < ref.energies.size(); ++s) {
        EXPECT_LT(rel_diff(t.energies[s].total(), ref.energies[s].total()),
                  kEnergyRelTol)
            << to_string(kernel) << " at step " << s << " (" << n << " atoms)";
      }
    }
  }
}

}  // namespace
}  // namespace emdpa::md::testing
