// Trajectory-level guarantees of the runtime SIMD dispatch and the
// precision seam:
//
//  * dp trajectories are BITWISE identical across every dispatched ISA —
//    the fixed 64-byte accumulation block (md/kernel_rows.h) makes
//    scalar/SSE2/AVX2/AVX-512 interchangeable at runtime, and this test is
//    the end-to-end proof on the canonical argon melt;
//  * sp and mixed runs start from the same golden energy (to float
//    rounding), conserve energy inside the committed dp envelope, and are
//    themselves exactly reproducible;
//  * sp/mixed force error on a real (step-100) melt configuration is
//    bounded — the same chaos-free harness the skin-policy suite uses,
//    with the measured single-precision drift bound asserted.
#include <gtest/gtest.h>

#include <cmath>

#include "md/reference_kernel.h"
#include "md/simd_kernels.h"
#include "md/single_precision.h"
#include "md/workload.h"
#include "trajectory_fixture.h"

namespace emdpa::md::testing {
namespace {

// Committed reference values from trajectory_golden_test.cpp (256 atoms).
constexpr double kGolden256E0 = 499.16696695200750;
constexpr double kGolden256Envelope = 0.052;

void expect_bitwise_identical(const Trajectory& a, const Trajectory& b,
                              const std::string& what) {
  ASSERT_EQ(a.energies.size(), b.energies.size()) << what;
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    EXPECT_EQ(a.energies[s].kinetic, b.energies[s].kinetic)
        << what << " step " << s;
    EXPECT_EQ(a.energies[s].potential, b.energies[s].potential)
        << what << " step " << s;
  }
  ASSERT_EQ(a.positions.size(), b.positions.size()) << what;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x) << what << " atom " << i;
    EXPECT_EQ(a.positions[i].y, b.positions[i].y) << what << " atom " << i;
    EXPECT_EQ(a.positions[i].z, b.positions[i].z) << what << " atom " << i;
  }
}

// The tentpole acceptance test: one binary, every compiled+supported ISA
// forced in turn, bitwise-identical dp melts — for both SIMD kernel paths.
TEST(CrossIsaTrajectory, DpMeltIsBitwiseIdenticalAcrossDispatchedIsas) {
  for (const SimKernel kernel :
       {SimKernel::kSoaN2, SimKernel::kNeighborList}) {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 60;
    spec.kernel = kernel;
    const auto available = simd_kernels::available_isas();
    ASSERT_FALSE(available.empty());
    spec.isa = available.front();
    const Trajectory reference = run_melt(spec);
    for (const simd::SimdType isa : available) {
      spec.isa = isa;
      const Trajectory t = run_melt(spec);
      expect_bitwise_identical(reference, t,
                               std::string(to_string(kernel)) + "/" +
                                   simd::to_string(isa));
    }
  }
}

class PrecisionTrajectory : public ::testing::TestWithParam<PrecisionMode> {};

TEST_P(PrecisionTrajectory, StartsOnTheGoldenEnergyToFloatRounding) {
  for (const SimKernel kernel :
       {SimKernel::kSoaN2, SimKernel::kNeighborList}) {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 1;
    spec.kernel = kernel;
    spec.precision = GetParam();
    const Trajectory t = run_melt(spec);
    // Float lane math rounds the initial PE at ~1e-7 relative; 1e-5 leaves
    // headroom without admitting a physics bug.
    EXPECT_LT(std::abs(t.energies.front().total() - kGolden256E0) /
                  std::abs(kGolden256E0),
              1e-5)
        << to_string(kernel);
  }
}

TEST_P(PrecisionTrajectory, ConservesEnergyInsideTheDpEnvelope) {
  // Energy conservation is the chaos-proof long-horizon observable: the dp
  // melt's committed drift envelope (dominated by the melt transient, not
  // by arithmetic precision) must hold for sp and mixed too.
  for (const SimKernel kernel :
       {SimKernel::kSoaN2, SimKernel::kNeighborList}) {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 200;
    spec.kernel = kernel;
    spec.precision = GetParam();
    const Trajectory t = run_melt(spec);
    const double e0 = t.energies.front().total();
    for (const StepEnergies& e : t.energies) {
      EXPECT_LT(std::abs(e.total() - e0) / std::abs(e0),
                2.0 * kGolden256Envelope)
          << to_string(kernel);
    }
  }
}

TEST_P(PrecisionTrajectory, RerunIsBitwiseIdentical) {
  // Lower precision must not mean lower determinism: the same sp/mixed run
  // twice is exactly the same trajectory.
  MeltSpec spec;
  spec.n_atoms = 256;
  spec.steps = 60;
  spec.kernel = SimKernel::kNeighborList;
  spec.precision = GetParam();
  const Trajectory a = run_melt(spec);
  const Trajectory b = run_melt(spec);
  expect_bitwise_identical(a, b, to_string(spec.precision));
}

TEST_P(PrecisionTrajectory, ThreadCountDoesNotChangeTheTrajectory) {
  // The fixed-chunk accumulation contract holds in float exactly as in
  // double: serial and pooled sp/mixed melts are the same bits.
  for (const SimKernel kernel :
       {SimKernel::kSoaN2, SimKernel::kNeighborList}) {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 60;
    spec.kernel = kernel;
    spec.precision = GetParam();
    const Trajectory serial = run_melt(spec);
    ThreadPool pool(3);
    spec.pool = &pool;
    const Trajectory pooled = run_melt(spec);
    expect_bitwise_identical(serial, pooled,
                             std::string(to_string(kernel)) + "/" +
                                 to_string(GetParam()) + " threads");
  }
}

TEST_P(PrecisionTrajectory, BitwiseIdenticalAcrossDispatchedIsas) {
  // The dp cross-ISA guarantee extends to the float kernels: the fp32
  // accumulation block is the same fixed 64-byte tile under every ISA.
  for (const SimKernel kernel :
       {SimKernel::kSoaN2, SimKernel::kNeighborList}) {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 60;
    spec.kernel = kernel;
    spec.precision = GetParam();
    const auto available = simd_kernels::available_isas();
    ASSERT_FALSE(available.empty());
    spec.isa = available.front();
    const Trajectory reference = run_melt(spec);
    for (const simd::SimdType isa : available) {
      spec.isa = isa;
      const Trajectory t = run_melt(spec);
      expect_bitwise_identical(reference, t,
                               std::string(to_string(kernel)) + "/" +
                                   to_string(GetParam()) + "/" +
                                   simd::to_string(isa));
    }
  }
}

// Committed golden final energies for the sp and mixed melts (256 atoms,
// 60 steps, dt 0.005, seed 20070326) — exact values, valid on every ISA and
// thread count because of the two invariance tests above.  A change here is
// a deliberate arithmetic change to the precision seam, never noise.
struct PrecisionGolden {
  double neighbor_list_final_e;
  double soa_n2_final_e;
};

PrecisionGolden golden_for(PrecisionMode precision) {
  if (precision == PrecisionMode::kSingle) {
    return {524.30243047806675, 524.30212923647127};
  }
  return {524.30143251058371, 524.30176219487134};
}

TEST_P(PrecisionTrajectory, FinalEnergyMatchesTheCommittedGolden) {
  const PrecisionGolden golden = golden_for(GetParam());
  for (const SimKernel kernel :
       {SimKernel::kNeighborList, SimKernel::kSoaN2}) {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 60;
    spec.kernel = kernel;
    spec.precision = GetParam();
    const Trajectory t = run_melt(spec);
    const double expected = kernel == SimKernel::kNeighborList
                                ? golden.neighbor_list_final_e
                                : golden.soa_n2_final_e;
    EXPECT_EQ(t.energies.back().total(), expected) << to_string(kernel);
  }
}

INSTANTIATE_TEST_SUITE_P(SpAndMixed, PrecisionTrajectory,
                         ::testing::Values(PrecisionMode::kSingle,
                                           PrecisionMode::kMixed),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// The skin-policy force-error harness, turned on the precision seam: walk
// 100 correct dp steps, then evaluate the sp/mixed kernels on that moved
// configuration against the double N^2 truth.  Both see the SAME positions,
// so chaos plays no role — what remains is exactly the single-precision
// arithmetic error, and it must stay inside the measured bound.
TEST(PrecisionTrajectory, ForceErrorOnMovedConfigurationStaysInMeasuredBound) {
  const LjParams lj;
  MeltSpec spec;
  spec.n_atoms = 256;
  spec.steps = 100;
  spec.kernel = SimKernel::kReference;
  const Trajectory moved = run_melt(spec);

  WorkloadSpec wspec;
  wspec.n_atoms = 256;
  Workload w = make_lattice_workload(wspec);
  ReferenceKernel reference;
  const double true_pe =
      reference.compute(moved.positions, w.box, lj, 1.0).potential_energy;

  SingleNeighborListKernel sp;
  const double sp_pe =
      sp.compute(moved.positions, w.box, lj, 1.0).potential_energy;
  NeighborListKernelMixed mixed;
  const double mixed_pe =
      mixed.compute(moved.positions, w.box, lj, 1.0).potential_energy;

  // Measured: ~1e-7..1e-6 relative PE error for float lanes on this
  // configuration; 1e-5 is the asserted drift bound (and would catch any
  // use of a stale or mis-traversed list outright, like the skin-policy
  // test's 1e-3 discriminator does).
  EXPECT_LT(std::abs(sp_pe - true_pe) / std::abs(true_pe), 1e-5);
  EXPECT_LT(std::abs(mixed_pe - true_pe) / std::abs(true_pe), 1e-5);
}

}  // namespace
}  // namespace emdpa::md::testing
