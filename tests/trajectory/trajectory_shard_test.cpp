// Trajectory-level coverage of the sharded neighbour-list path
// (md/sharded_domain.h) behind the Simulation seam:
//
//  * the canonical melt under kShardedList is bitwise the kNeighborList
//    melt at every shard count, serial and pooled (the golden-trajectory
//    check — the flat list's own melt is already pinned against golden
//    energies elsewhere in this suite);
//  * checkpoint-then-resume and snapshot-replay of a sharded run finish
//    bitwise identical to the uninterrupted run;
//  * a resume under a different shard count is rejected by the v3 config
//    check exactly like a kernel mismatch, and --resume-force overrides it.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/error.h"
#include "trajectory_fixture.h"

namespace emdpa::md::testing {
namespace {

// 1024 atoms: large enough that the box fits a real stencil (256-atom boxes
// fall into the all-pairs regime where sharding is bypassed), and exactly
// the workload family the flat-list melt is proven on.
constexpr std::size_t kAtoms = 1024;

void expect_bitwise_equal(const Trajectory& a, const Trajectory& b,
                          const std::string& label) {
  ASSERT_EQ(a.energies.size(), b.energies.size()) << label;
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    ASSERT_EQ(a.energies[s].kinetic, b.energies[s].kinetic)
        << label << " step " << s;
    ASSERT_EQ(a.energies[s].potential, b.energies[s].potential)
        << label << " step " << s;
  }
  ASSERT_EQ(a.positions.size(), b.positions.size()) << label;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    ASSERT_EQ(a.positions[i], b.positions[i]) << label << " atom " << i;
  }
}

TEST(ShardedTrajectory, MeltIsBitwiseTheFlatListMelt) {
  MeltSpec flat_spec;
  flat_spec.n_atoms = kAtoms;
  flat_spec.steps = 80;
  flat_spec.kernel = SimKernel::kNeighborList;
  const Trajectory flat = run_melt(flat_spec);

  for (const std::size_t shards : {std::size_t(1), std::size_t(2),
                                   std::size_t(4), std::size_t(8)}) {
    MeltSpec spec = flat_spec;
    spec.kernel = SimKernel::kShardedList;
    spec.shards = shards;
    const Trajectory serial = run_melt(spec);
    expect_bitwise_equal(flat, serial,
                         "shards=" + std::to_string(shards) + " serial");
    EXPECT_EQ(serial.list_rebuilds, flat.list_rebuilds);

    ThreadPool pool(8);
    spec.pool = &pool;
    const Trajectory pooled = run_melt(spec);
    expect_bitwise_equal(flat, pooled,
                         "shards=" + std::to_string(shards) + " @8 threads");
  }
}

Simulation::Options sharded_options(std::size_t shards, ThreadPool* pool) {
  Simulation::Options options;
  options.workload.n_atoms = kAtoms;
  options.kernel = SimKernel::kShardedList;
  options.shards = shards;
  options.pool = pool;
  return options;
}

void expect_states_equal(const Simulation& a, const Simulation& b) {
  ASSERT_EQ(a.system().size(), b.system().size());
  for (std::size_t i = 0; i < a.system().size(); ++i) {
    EXPECT_EQ(a.system().positions()[i], b.system().positions()[i])
        << "position diverged at atom " << i;
    EXPECT_EQ(a.system().velocities()[i], b.system().velocities()[i])
        << "velocity diverged at atom " << i;
    EXPECT_EQ(a.system().accelerations()[i], b.system().accelerations()[i])
        << "acceleration diverged at atom " << i;
  }
  EXPECT_EQ(a.last_energies().kinetic, b.last_energies().kinetic);
  EXPECT_EQ(a.last_energies().potential, b.last_energies().potential);
}

TEST(ShardedTrajectory, MidpointResumeIsBitIdentical) {
  ThreadPool pool(4);
  const Simulation::Options options = sharded_options(4, &pool);
  constexpr int kTotalSteps = 160;
  constexpr int kCheckpointStep = 80;

  Simulation uninterrupted(options);
  uninterrupted.run(kCheckpointStep);
  std::stringstream checkpoint;
  uninterrupted.save(checkpoint);
  uninterrupted.run(kTotalSteps - kCheckpointStep);

  Simulation resumed = Simulation::resume(checkpoint, options);
  ASSERT_EQ(resumed.current_step(), kCheckpointStep);
  ASSERT_EQ(resumed.kernel(), SimKernel::kShardedList);
  resumed.run(kTotalSteps - kCheckpointStep);
  expect_states_equal(resumed, uninterrupted);
}

TEST(ShardedTrajectory, SnapshotReplayIsBitIdenticalAndPureObserver) {
  ThreadPool pool(4);
  const Simulation::Options options = sharded_options(2, &pool);
  constexpr int kTotalSteps = 120;
  constexpr int kSnapshotStep = 60;

  // Baseline without any snapshot: proves the observed run is unperturbed.
  Simulation baseline(options);
  baseline.run(kTotalSteps);

  Simulation observed(options);
  observed.run(kSnapshotStep);
  const Checkpoint snapshot = observed.snapshot();  // carries the live list
  observed.run(kTotalSteps - kSnapshotStep);
  expect_states_equal(observed, baseline);

  Simulation replayed = Simulation::resume(snapshot, options);
  ASSERT_EQ(replayed.current_step(), kSnapshotStep);
  replayed.run(kTotalSteps - kSnapshotStep);
  expect_states_equal(replayed, baseline);
}

TEST(ShardedTrajectory, ShardCountMismatchOnResumeFailsLoudly) {
  // The checkpoint records "sharded-list/<N>"; resuming with a different N
  // never changes the bits, but it does change the decomposition every perf
  // number was measured under — treated like any other config mismatch.
  Simulation sim(sharded_options(2, nullptr));
  sim.run(10);
  std::stringstream checkpoint;
  sim.save(checkpoint);

  EXPECT_THROW(Simulation::resume(checkpoint, sharded_options(4, nullptr)),
               RuntimeFailure);
}

TEST(ShardedTrajectory, ShardCountMismatchOverriddenByResumeForce) {
  Simulation sim(sharded_options(2, nullptr));
  sim.run(10);
  std::stringstream checkpoint;
  sim.save(checkpoint);

  Simulation::Options forced = sharded_options(4, nullptr);
  forced.ignore_checkpoint_config = true;  // --resume-force
  Simulation resumed = Simulation::resume(checkpoint, forced);
  EXPECT_EQ(resumed.current_step(), 10);
  EXPECT_EQ(resumed.shards(), 4u);
}

TEST(ShardedTrajectory, FlatVsShardedResumeAlsoMismatches) {
  // Flat list and sharded list are distinct kernel tokens even at shards=1.
  Simulation::Options flat;
  flat.workload.n_atoms = kAtoms;
  flat.kernel = SimKernel::kNeighborList;
  Simulation sim(flat);
  sim.run(10);
  std::stringstream checkpoint;
  sim.save(checkpoint);

  EXPECT_THROW(Simulation::resume(checkpoint, sharded_options(1, nullptr)),
               RuntimeFailure);
}

}  // namespace
}  // namespace emdpa::md::testing
