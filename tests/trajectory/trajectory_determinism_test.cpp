// Determinism guarantees of the simulation seam: thread-count invariance
// (bitwise, not approximate) for both pool-parallel kernels, and kAuto
// resolving to exactly the run an explicit kernel choice would produce.
#include <gtest/gtest.h>

#include "trajectory_fixture.h"

namespace emdpa::md::testing {
namespace {

void expect_bitwise_equal(const Trajectory& a, const Trajectory& b,
                          const std::string& label) {
  ASSERT_EQ(a.energies.size(), b.energies.size()) << label;
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    ASSERT_EQ(a.energies[s].kinetic, b.energies[s].kinetic)
        << label << " step " << s;
    ASSERT_EQ(a.energies[s].potential, b.energies[s].potential)
        << label << " step " << s;
  }
  ASSERT_EQ(a.positions.size(), b.positions.size()) << label;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    ASSERT_EQ(a.positions[i].x, b.positions[i].x) << label << " atom " << i;
    ASSERT_EQ(a.positions[i].y, b.positions[i].y) << label << " atom " << i;
    ASSERT_EQ(a.positions[i].z, b.positions[i].z) << label << " atom " << i;
  }
}

class ThreadInvariance : public ::testing::TestWithParam<SimKernel> {};

TEST_P(ThreadInvariance, RunIsBitwiseIdenticalAtAnyThreadCount) {
  MeltSpec spec;
  spec.n_atoms = 256;
  spec.steps = 60;
  spec.kernel = GetParam();
  const Trajectory serial = run_melt(spec);  // pool == nullptr

  for (const std::size_t threads : {std::size_t(1), std::size_t(2),
                                    std::size_t(8)}) {
    ThreadPool pool(threads);
    spec.pool = &pool;
    const Trajectory pooled = run_melt(spec);
    expect_bitwise_equal(serial, pooled,
                         std::string(to_string(GetParam())) + " @" +
                             std::to_string(threads) + " threads");
  }
}

INSTANTIATE_TEST_SUITE_P(PoolKernels, ThreadInvariance,
                         ::testing::Values(SimKernel::kSoaN2,
                                           SimKernel::kNeighborList),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// NOTE: the crossover RESOLUTION rule (which kernel kAuto picks on which
// side of kListCrossoverAtoms, and the pinned boundary value itself) is
// tested exactly once, in tests/md/kernel_crossover_test.cpp.  This file
// only asserts the trajectory-level consequence: that the auto run is
// bitwise the explicit run.

TEST(AutoKernel, AutoRunMatchesExplicitChoiceBitwise) {
  // Below the crossover: auto == explicit SoA.
  {
    MeltSpec spec;
    spec.n_atoms = 256;
    spec.steps = 40;
    spec.kernel = SimKernel::kAuto;
    const Trajectory auto_run = run_melt(spec);
    spec.kernel = SimKernel::kSoaN2;
    const Trajectory explicit_run = run_melt(spec);
    expect_bitwise_equal(auto_run, explicit_run, "auto vs soa-n2");
  }
  // At/above the crossover: auto == explicit neighbour list, rebuilds and
  // all.
  {
    MeltSpec spec;
    spec.n_atoms = HostParallelBackend::kListCrossoverAtoms;
    spec.steps = 25;
    spec.kernel = SimKernel::kAuto;
    const Trajectory auto_run = run_melt(spec);
    spec.kernel = SimKernel::kNeighborList;
    const Trajectory explicit_run = run_melt(spec);
    expect_bitwise_equal(auto_run, explicit_run, "auto vs neighbor-list");
    EXPECT_EQ(auto_run.list_rebuilds, explicit_run.list_rebuilds);
    EXPECT_GE(auto_run.list_rebuilds, 1u);
  }
}

}  // namespace
}  // namespace emdpa::md::testing
