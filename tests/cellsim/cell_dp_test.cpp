#include <gtest/gtest.h>

#include <cmath>

#include "cellsim/cell_dp.h"
#include "cellsim/cell_md_app.h"
#include "core/error.h"
#include "md/backend.h"

namespace emdpa::cell {
namespace {

md::RunConfig small_config(std::size_t n = 128, int steps = 3) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(CellDpBackend, NameAndPrecision) {
  EXPECT_EQ(CellDpBackend(8).name(), "cell-8spe[double-precision]");
  EXPECT_EQ(CellDpBackend(1).precision(), "double");
}

TEST(CellDpBackend, ValidatesSpeCount) {
  EXPECT_THROW(CellDpBackend backend(0), ContractViolation);
  EXPECT_THROW(CellDpBackend backend(9), ContractViolation);
}

TEST(CellDpBackend, PhysicsTracksHostReferenceTightly) {
  // Double precision: agreement should be at 1e-9 level, far tighter than
  // the single-precision Cell port.
  const auto cfg = small_config(128, 4);
  const auto dp = CellDpBackend(8).run(cfg);
  const auto host = md::HostReferenceBackend().run(cfg);
  for (std::size_t s = 0; s < dp.energies.size(); ++s) {
    EXPECT_NEAR(dp.energies[s].potential, host.energies[s].potential,
                1e-9 * std::fabs(host.energies[s].potential));
  }
  for (std::size_t i = 0; i < dp.final_state.size(); ++i) {
    EXPECT_NEAR(dp.final_state.positions()[i].x,
                host.final_state.positions()[i].x, 1e-9);
  }
}

TEST(CellDpBackend, MuchSlowerThanSinglePrecision) {
  const auto cfg = small_config(256, 2);
  const double sp_compute = CellBackend()
                                .run(cfg)
                                .breakdown_component("spe_compute")
                                .to_seconds();
  const double dp_compute = CellDpBackend(8)
                                .run(cfg)
                                .breakdown_component("spe_compute")
                                .to_seconds();
  // The DP ALU multiplier dominates the kernel: expect roughly an order of
  // magnitude between the ports.
  EXPECT_GT(dp_compute / sp_compute, 6.0);
  EXPECT_LT(dp_compute / sp_compute, 20.0);
}

TEST(CellDpBackend, SpeCountStillScalesRuntime) {
  // spe_compute sums over SPEs (total work is partition-invariant); the
  // end-to-end device time is where the parallelism shows, once the work is
  // large enough to amortise the extra thread launches.
  const auto cfg = small_config(1024, 2);
  const auto one = CellDpBackend(1).run(cfg);
  const auto eight = CellDpBackend(8).run(cfg);
  EXPECT_NEAR(eight.breakdown_component("spe_compute").to_seconds(),
              one.breakdown_component("spe_compute").to_seconds(),
              1e-6);  // same total work
  EXPECT_LT(eight.device_time.to_seconds(),
            0.5 * one.device_time.to_seconds());
}

TEST(CellDpBackend, LocalStoreLimitHalvesVsSinglePrecision) {
  // DP arrays are 32 B/atom: ~6500 atoms fit in SP, only ~3200 in DP.
  md::RunConfig big = small_config(4096, 1);
  EXPECT_THROW(CellDpBackend(8).run(big), ContractViolation);
  EXPECT_NO_THROW(CellBackend().run(big));
}

TEST(CellDpBackend, RejectsShiftedPotential) {
  auto cfg = small_config();
  cfg.lj.shifted = true;
  EXPECT_THROW(CellDpBackend(8).run(cfg), ContractViolation);
}

TEST(SpeDpKernel, RangeValidation) {
  LocalStore ls;
  const LsAddr pos = ls.allocate(64 * sizeof(emdpa::Vec4d), "pos");
  const LsAddr acc = ls.allocate(64 * sizeof(emdpa::Vec4d), "acc");
  SpeDpKernelParams params;
  params.n_atoms = 64;
  params.i_begin = 10;
  params.i_end = 5;
  EXPECT_THROW(run_spe_accel_kernel_dp(params, {}, ls, pos, acc),
               ContractViolation);
}

}  // namespace
}  // namespace emdpa::cell
