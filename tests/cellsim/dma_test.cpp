#include <gtest/gtest.h>

#include <vector>

#include "cellsim/dma.h"
#include "core/aligned_buffer.h"
#include "core/error.h"

namespace emdpa::cell {
namespace {

class DmaTest : public ::testing::Test {
 protected:
  LocalStore ls_;
  DmaEngine dma_;
  AlignedBuffer<float> host_{1024};  // 16-byte aligned host storage
};

TEST_F(DmaTest, GetCopiesHostToLocalStore) {
  for (int i = 0; i < 8; ++i) host_[i] = static_cast<float>(i);
  const LsAddr dst = ls_.allocate(32, "in");
  dma_.get(ls_, dst, host_.data(), 32, /*tag=*/0);
  const float* p = ls_.data_at<float>(dst, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(p[i], static_cast<float>(i));
}

TEST_F(DmaTest, PutCopiesLocalStoreToHost) {
  const LsAddr src = ls_.allocate(32, "out");
  float* p = ls_.data_at<float>(src, 8);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<float>(10 + i);
  dma_.put(ls_, src, host_.data(), 32, 1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(host_[i], static_cast<float>(10 + i));
}

TEST_F(DmaTest, RejectsBadTags) {
  const LsAddr a = ls_.allocate(16, "a");
  EXPECT_THROW(dma_.get(ls_, a, host_.data(), 16, -1), ContractViolation);
  EXPECT_THROW(dma_.get(ls_, a, host_.data(), 16, 32), ContractViolation);
}

TEST_F(DmaTest, RejectsUnalignedSizes) {
  const LsAddr a = ls_.allocate(32, "a");
  EXPECT_THROW(dma_.get(ls_, a, host_.data(), 24, 0), ContractViolation);
  EXPECT_THROW(dma_.get(ls_, a, host_.data(), 0, 0), ContractViolation);
}

TEST_F(DmaTest, RejectsOversizedRequests) {
  const LsAddr a = ls_.allocate(32 * 1024, "big");
  EXPECT_THROW(dma_.get(ls_, a, host_.data(), 32 * 1024, 0), ContractViolation);
}

TEST_F(DmaTest, RejectsUnalignedHostPointer) {
  const LsAddr a = ls_.allocate(16, "a");
  // Offset by one float: 4-byte aligned only.
  EXPECT_THROW(dma_.get(ls_, a, host_.data() + 1, 16, 0), ContractViolation);
}

TEST_F(DmaTest, RejectsUnalignedLsAddress) {
  ls_.allocate(16, "pad");
  // Hand-crafted unaligned LS address.
  EXPECT_THROW(dma_.get(ls_, LsAddr{8}, host_.data(), 16, 0), ContractViolation);
}

TEST_F(DmaTest, LargeTransferSplitsIntoRequests) {
  AlignedBuffer<float> big(16 * 1024);  // 64 KB
  const LsAddr dst = ls_.allocate(64 * 1024, "big");
  dma_.get_large(ls_, dst, big.data(), 64 * 1024, 2);
  EXPECT_EQ(dma_.requests_issued(), 4u);  // 4 x 16 KB
  EXPECT_EQ(dma_.bytes_transferred(), 64u * 1024u);
}

TEST_F(DmaTest, WaitReturnsFullLatencyWithoutOverlap) {
  const LsAddr a = ls_.allocate(16 * 1024, "buf");
  AlignedBuffer<float> big(4096);
  dma_.get(ls_, a, big.data(), 16 * 1024, 3);
  const ModelTime stall = dma_.wait_on_tags(1u << 3, ModelTime::zero());
  // 16 KB at 16 GB/s = 1 us, plus request latency 0.3 us.
  EXPECT_NEAR(stall.to_seconds(), 1.3e-6, 0.2e-6);
}

TEST_F(DmaTest, ComputeOverlapsTransferTime) {
  const LsAddr a = ls_.allocate(16 * 1024, "buf");
  AlignedBuffer<float> big(4096);
  dma_.get(ls_, a, big.data(), 16 * 1024, 4);
  // Plenty of compute since issue: no stall remains.
  const ModelTime stall =
      dma_.wait_on_tags(1u << 4, ModelTime::microseconds(50));
  EXPECT_DOUBLE_EQ(stall.to_seconds(), 0.0);
}

TEST_F(DmaTest, WaitOnlyClearsRequestedTags) {
  const LsAddr a = ls_.allocate(32, "a");
  const LsAddr b = ls_.allocate(32, "b");
  dma_.get(ls_, a, host_.data(), 32, 5);
  dma_.get(ls_, b, host_.data(), 32, 6);
  dma_.wait_on_tags(1u << 5, ModelTime::zero());
  // Tag 6 still pending: waiting for it returns nonzero stall.
  const ModelTime stall = dma_.wait_on_tags(1u << 6, ModelTime::zero());
  EXPECT_GT(stall.to_seconds(), 0.0);
}

TEST_F(DmaTest, WaitTwiceIsZero) {
  const LsAddr a = ls_.allocate(32, "a");
  dma_.get(ls_, a, host_.data(), 32, 7);
  dma_.wait_on_tags(1u << 7, ModelTime::zero());
  EXPECT_DOUBLE_EQ(dma_.wait_on_tags(1u << 7, ModelTime::zero()).to_seconds(),
                   0.0);
}

}  // namespace
}  // namespace emdpa::cell
