#include <gtest/gtest.h>

#include "cellsim/spe_simd.h"

namespace emdpa::cell {
namespace {

TEST(SpeSimd, SplatsFillAllLanes) {
  const vfloat4 v = spu_splats(2.5f);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(v.lane[l], 2.5f);
}

TEST(SpeSimd, Vec4RoundTrip) {
  const emdpa::Vec4f src{1, 2, 3, 4};
  EXPECT_EQ(vfloat4::from(src).to_vec4(), src);
}

TEST(SpeSimd, LaneWiseArithmetic) {
  const vfloat4 a{{1, 2, 3, 4}};
  const vfloat4 b{{10, 20, 30, 40}};
  const vfloat4 sum = spu_add(a, b);
  const vfloat4 diff = spu_sub(b, a);
  const vfloat4 prod = spu_mul(a, b);
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(sum.lane[l], a.lane[l] + b.lane[l]);
    EXPECT_EQ(diff.lane[l], b.lane[l] - a.lane[l]);
    EXPECT_EQ(prod.lane[l], a.lane[l] * b.lane[l]);
  }
}

TEST(SpeSimd, AbsClearsSignBit) {
  const vfloat4 v{{-1.0f, 2.0f, -0.0f, -3.5f}};
  const vfloat4 a = spu_abs(v);
  EXPECT_EQ(a.lane[0], 1.0f);
  EXPECT_EQ(a.lane[1], 2.0f);
  EXPECT_EQ(a.lane[2], 0.0f);
  EXPECT_EQ(a.lane[3], 3.5f);
}

TEST(SpeSimd, CopysignMergesSigns) {
  const vfloat4 mag{{1, 2, 3, 4}};
  const vfloat4 sign{{-1, 1, -0.0f, 5}};
  const vfloat4 r = spu_copysign(mag, sign);
  EXPECT_EQ(r.lane[0], -1.0f);
  EXPECT_EQ(r.lane[1], 2.0f);
  EXPECT_EQ(r.lane[2], -3.0f);
  EXPECT_EQ(r.lane[3], 4.0f);
}

TEST(SpeSimd, CompareGreaterThanPerLane) {
  const vfloat4 a{{1, 5, 3, 0}};
  const vfloat4 b{{2, 2, 3, -1}};
  const vmask4 m = spu_cmpgt(a, b);
  EXPECT_FALSE(m.lane[0]);
  EXPECT_TRUE(m.lane[1]);
  EXPECT_FALSE(m.lane[2]);  // equal is not greater
  EXPECT_TRUE(m.lane[3]);
}

TEST(SpeSimd, SelectPicksBWhereMaskTrue) {
  const vfloat4 a{{1, 1, 1, 1}};
  const vfloat4 b{{9, 9, 9, 9}};
  const vmask4 m{{true, false, true, false}};
  const vfloat4 r = spu_sel(a, b, m);
  EXPECT_EQ(r.lane[0], 9.0f);
  EXPECT_EQ(r.lane[1], 1.0f);
  EXPECT_EQ(r.lane[2], 9.0f);
  EXPECT_EQ(r.lane[3], 1.0f);
}

TEST(SpeSimd, ExtractAndInsert) {
  vfloat4 v{{1, 2, 3, 4}};
  EXPECT_EQ(spu_extract(v, 2), 3.0f);
  v = spu_insert(99.0f, v, 1);
  EXPECT_EQ(v.lane[1], 99.0f);
  EXPECT_EQ(v.lane[0], 1.0f);
}

TEST(SpeSimd, SimdMatchesScalarArithmeticBitExactly) {
  // The Fig-5 equivalence hinges on SIMD lanes computing exactly what the
  // scalar path computes.
  const float xs[4] = {1.7f, -2.3f, 0.001f, 12345.678f};
  const float ys[4] = {0.9f, 4.25f, -7.5f, 0.333f};
  vfloat4 a{{xs[0], xs[1], xs[2], xs[3]}};
  vfloat4 b{{ys[0], ys[1], ys[2], ys[3]}};
  const vfloat4 r = spu_mul(spu_add(a, b), spu_sub(a, b));
  for (int l = 0; l < 4; ++l) {
    const float expect = (xs[l] + ys[l]) * (xs[l] - ys[l]);
    EXPECT_EQ(r.lane[l], expect);
  }
}

}  // namespace
}  // namespace emdpa::cell
