#include <gtest/gtest.h>

#include "cellsim/mailbox.h"
#include "core/error.h"

namespace emdpa::cell {
namespace {

TEST(MailboxFifo, StartsEmpty) {
  MailboxFifo fifo("test", 4);
  EXPECT_TRUE(fifo.empty());
  EXPECT_FALSE(fifo.full());
  EXPECT_EQ(fifo.size(), 0u);
  EXPECT_EQ(fifo.depth(), 4u);
}

TEST(MailboxFifo, FifoOrder) {
  MailboxFifo fifo("test", 4);
  fifo.push(1);
  fifo.push(2);
  fifo.push(3);
  EXPECT_EQ(fifo.pop(), 1u);
  EXPECT_EQ(fifo.pop(), 2u);
  EXPECT_EQ(fifo.pop(), 3u);
  EXPECT_TRUE(fifo.empty());
}

TEST(MailboxFifo, FullAtDepth) {
  MailboxFifo fifo("test", 2);
  fifo.push(1);
  EXPECT_FALSE(fifo.full());
  fifo.push(2);
  EXPECT_TRUE(fifo.full());
}

TEST(MailboxFifo, OverflowIsDeadlockContract) {
  MailboxFifo fifo("test", 1);
  fifo.push(7);
  EXPECT_THROW(fifo.push(8), ContractViolation);
}

TEST(MailboxFifo, UnderflowIsDeadlockContract) {
  MailboxFifo fifo("test", 1);
  EXPECT_THROW(fifo.pop(), ContractViolation);
}

TEST(MailboxFifo, ReusableAfterDraining) {
  MailboxFifo fifo("test", 1);
  fifo.push(1);
  fifo.pop();
  EXPECT_NO_THROW(fifo.push(2));
  EXPECT_EQ(fifo.pop(), 2u);
}

TEST(Mailboxes, HardwareDepths) {
  Mailboxes boxes;
  EXPECT_EQ(boxes.inbound.depth(), 4u);   // PPE -> SPE: 4 entries
  EXPECT_EQ(boxes.outbound.depth(), 1u);  // SPE -> PPE: 1 entry
}

TEST(Mailboxes, InboundHoldsFourSignals) {
  Mailboxes boxes;
  for (std::uint32_t i = 0; i < 4; ++i) boxes.inbound.push(i);
  EXPECT_THROW(boxes.inbound.push(4), ContractViolation);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(boxes.inbound.pop(), i);
}

}  // namespace
}  // namespace emdpa::cell
