#include <gtest/gtest.h>

#include <cmath>

#include "cellsim/cell_md_app.h"
#include "core/error.h"
#include "md/backend.h"

namespace emdpa::cell {
namespace {

md::RunConfig small_config(std::size_t n = 128, int steps = 3) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(CellBackend, Names) {
  CellRunOptions ppe;
  ppe.n_spes = 0;
  EXPECT_EQ(CellBackend(ppe).name(), "cell-ppe-only");

  CellRunOptions eight;
  eight.n_spes = 8;
  EXPECT_EQ(CellBackend(eight).name(), "cell-8spe[persistent-mailbox]");

  CellRunOptions respawn;
  respawn.n_spes = 1;
  respawn.launch_mode = LaunchMode::kRespawnEveryStep;
  EXPECT_EQ(CellBackend(respawn).name(), "cell-1spe[respawn-every-step]");
}

TEST(CellBackend, SinglePrecision) {
  EXPECT_EQ(CellBackend().precision(), "single");
}

TEST(CellBackend, RejectsTooManySpes) {
  CellRunOptions opt;
  opt.n_spes = 9;
  CellBackend backend(opt);
  EXPECT_THROW(backend.run(small_config()), ContractViolation);
}

TEST(CellBackend, RejectsShiftedPotential) {
  auto cfg = small_config();
  cfg.lj.shifted = true;
  CellBackend backend;
  EXPECT_THROW(backend.run(cfg), ContractViolation);
}

TEST(CellBackend, EnergiesAndStepTimesShapedCorrectly) {
  CellBackend backend;
  const auto r = backend.run(small_config(128, 4));
  EXPECT_EQ(r.energies.size(), 5u);  // prime + 4 steps
  EXPECT_EQ(r.step_times.size(), 4u);
  EXPECT_GT(r.device_time.to_seconds(), 0.0);
}

TEST(CellBackend, PhysicsTracksHostReference) {
  CellBackend backend;
  md::HostReferenceBackend host;
  const auto cfg = small_config(128, 4);
  const auto a = backend.run(cfg);
  const auto b = host.run(cfg);
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    const double scale = std::fabs(b.energies[s].potential) + 1.0;
    EXPECT_NEAR(a.energies[s].potential, b.energies[s].potential, 1e-3 * scale);
    EXPECT_NEAR(a.energies[s].kinetic, b.energies[s].kinetic,
                1e-3 * (b.energies[s].kinetic + 1.0));
  }
}

TEST(CellBackend, SpeCountsAgreeWithPpeOnlyPhysics) {
  // The SPE kernels and the PPE kernel implement identical arithmetic.
  const auto cfg = small_config(64, 3);
  CellRunOptions one;
  one.n_spes = 1;
  CellRunOptions ppe;
  ppe.n_spes = 0;
  const auto a = CellBackend(one).run(cfg);
  const auto b = CellBackend(ppe).run(cfg);
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.energies[s].potential, b.energies[s].potential);
    EXPECT_DOUBLE_EQ(a.energies[s].kinetic, b.energies[s].kinetic);
  }
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
}

TEST(CellBackend, SpePartitioningDoesNotChangePhysics) {
  const auto cfg = small_config(64, 3);
  CellRunOptions one, eight;
  one.n_spes = 1;
  eight.n_spes = 8;
  const auto a = CellBackend(one).run(cfg);
  const auto b = CellBackend(eight).run(cfg);
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
}

TEST(CellBackend, EightSpesFasterThanOne) {
  // Needs enough work to amortise the 8 thread launches — at tiny atom
  // counts one SPE genuinely wins (launch overhead dominates), which is
  // exactly the Fig-6 lesson.
  const auto cfg = small_config(1024, 5);
  CellRunOptions one, eight;
  one.n_spes = 1;
  eight.n_spes = 8;
  const auto a = CellBackend(one).run(cfg);
  const auto b = CellBackend(eight).run(cfg);
  EXPECT_LT(b.device_time.to_seconds(), a.device_time.to_seconds());
}

TEST(CellBackend, RespawnModePaysLaunchEveryStep) {
  const auto cfg = small_config(128, 5);
  CellRunOptions respawn, persistent;
  respawn.n_spes = 4;
  respawn.launch_mode = LaunchMode::kRespawnEveryStep;
  persistent.n_spes = 4;
  persistent.launch_mode = LaunchMode::kPersistent;

  const auto r = CellBackend(respawn).run(cfg);
  const auto p = CellBackend(persistent).run(cfg);

  // Respawn: 5 steps x 4 SPEs; persistent: 4 launches total.
  const double launch_r = r.breakdown_component("spe_launch").to_seconds();
  const double launch_p = p.breakdown_component("spe_launch").to_seconds();
  EXPECT_NEAR(launch_r / launch_p, 5.0, 1e-9);
  EXPECT_GT(r.device_time.to_seconds(), p.device_time.to_seconds());
}

TEST(CellBackend, PersistentModeUsesMailboxes) {
  const auto cfg = small_config(128, 3);
  CellRunOptions opt;
  opt.n_spes = 2;
  const auto r = CellBackend(opt).run(cfg);
  // Prime launches; 3 timed steps signal 2 SPEs each.
  EXPECT_EQ(r.ops.get("cell.mailbox_signals"), 6u);
  EXPECT_EQ(r.ops.get("cell.spe_launches"), 2u);
}

TEST(CellBackend, RespawnModeNeverSignals) {
  const auto cfg = small_config(128, 3);
  CellRunOptions opt;
  opt.n_spes = 2;
  opt.launch_mode = LaunchMode::kRespawnEveryStep;
  const auto r = CellBackend(opt).run(cfg);
  EXPECT_EQ(r.ops.get("cell.mailbox_signals"), 0u);
  EXPECT_EQ(r.ops.get("cell.spe_launches"), 8u);  // prime + 3 steps, 2 SPEs
}

TEST(CellBackend, BreakdownHasAllComponents) {
  const auto r = CellBackend().run(small_config(128, 2));
  EXPECT_GT(r.breakdown_component("spe_compute").to_seconds(), 0.0);
  EXPECT_GT(r.breakdown_component("spe_launch").to_seconds(), 0.0);
  EXPECT_GT(r.breakdown_component("dma").to_seconds(), 0.0);
  EXPECT_GT(r.breakdown_component("ppe").to_seconds(), 0.0);
}

TEST(CellBackend, VariantsOnlyChangeTime) {
  const auto cfg = small_config(64, 2);
  CellRunOptions slow, fast;
  slow.n_spes = 1;
  slow.variant = SimdVariant::kOriginal;
  fast.n_spes = 1;
  fast.variant = SimdVariant::kSimdAccel;
  const auto a = CellBackend(slow).run(cfg);
  const auto b = CellBackend(fast).run(cfg);
  EXPECT_GT(a.breakdown_component("spe_compute").to_seconds(),
            b.breakdown_component("spe_compute").to_seconds());
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
}

TEST(SpeContext, ThreadLifecycle) {
  CellConfig config;
  SpeContext spe(0, config);
  EXPECT_FALSE(spe.thread_running());
  EXPECT_THROW(spe.signal(1), ContractViolation);  // no thread yet
  const ModelTime launch = spe.launch_thread();
  EXPECT_EQ(launch, config.thread_launch);
  EXPECT_TRUE(spe.thread_running());
  EXPECT_THROW(spe.launch_thread(), ContractViolation);  // double launch
  spe.terminate_thread();
  EXPECT_FALSE(spe.thread_running());
  EXPECT_THROW(spe.terminate_thread(), ContractViolation);
}

TEST(SpeContext, SignalDeliversToInboundMailbox) {
  CellConfig config;
  SpeContext spe(0, config);
  spe.launch_thread();
  spe.signal(42);
  EXPECT_EQ(spe.mailboxes().inbound.pop(), 42u);
}

}  // namespace
}  // namespace emdpa::cell
