// The PairStats divergence contract, asserted.
//
// Every md:: host kernel reports UNORDERED pair stats ({i,j} counted once);
// the cellsim device kernels (SPE and PPE) deliberately keep DIRECTED
// per-visit counters, because their loops — like the hardware ports they
// model — really do visit each pair from both ends, and that directed visit
// is the unit of modelled device work (ops, DMA traffic, local-store
// touches).  force_kernel.h documents this as a permanent contract; this
// test is the executable form: directed counts are exactly 2x the unordered
// ones, so the two conventions are mutually convertible and neither can
// silently drift.
#include <gtest/gtest.h>

#include <vector>

#include "cellsim/ppe_kernel.h"
#include "cellsim/spe_kernel.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::cell {
namespace {

struct FluidFixture {
  explicit FluidFixture(std::size_t n) : n_atoms(n) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload w = md::make_lattice_workload(spec);
    for (auto& p : w.system.positions()) p = w.box.wrap(p);
    edge = static_cast<float>(w.box.edge());
    positions_d = w.system.positions();
    for (const auto& p : positions_d) {
      positions_f.push_back(emdpa::Vec4f(emdpa::vec_cast<float>(p), 0.0f));
    }
  }

  std::size_t n_atoms;
  float edge = 0;
  std::vector<emdpa::Vec3d> positions_d;
  std::vector<emdpa::Vec4f> positions_f;
};

TEST(VisitContract, PpeDirectedCandidatesAreTwiceUnordered) {
  FluidFixture f(64);
  std::vector<emdpa::Vec4f> accel(f.n_atoms);
  const auto ppe = run_ppe_accel_kernel(f.edge, 6.25f, 1.0f, 1.0f, 1.0f,
                                        f.positions_f.data(), accel.data(),
                                        f.n_atoms);

  md::ReferenceKernel ref;
  const auto host =
      ref.compute(f.positions_d, md::PeriodicBox(f.edge), md::LjParams{}, 1.0);

  // Candidates: the PPE loop runs "for each i, all j != i" — exactly twice
  // the unordered N*(N-1)/2 the host kernels report.
  EXPECT_EQ(ppe.stats.candidates, 2 * host.stats.candidates);
  EXPECT_EQ(ppe.stats.candidates, 64u * 63u);

  // Interacting: directed visits are symmetric (the separation only flips
  // sign), so the count is even; halving it recovers the unordered
  // convention up to single-vs-double rounding exactly at the cutoff shell.
  EXPECT_EQ(ppe.stats.interacting % 2, 0u);
  EXPECT_NEAR(static_cast<double>(ppe.stats.interacting) / 2.0,
              static_cast<double>(host.stats.interacting),
              0.01 * static_cast<double>(host.stats.interacting) + 1.0);
}

TEST(VisitContract, SpeDirectedCandidatesAreTwiceUnordered) {
  FluidFixture f(64);
  LocalStore ls;
  const LsAddr ls_pos = ls.allocate(f.n_atoms * sizeof(emdpa::Vec4f), "pos");
  const LsAddr ls_acc = ls.allocate(f.n_atoms * sizeof(emdpa::Vec4f), "acc");
  auto* pos = ls.data_at<emdpa::Vec4f>(ls_pos, f.n_atoms);
  for (std::size_t i = 0; i < f.n_atoms; ++i) pos[i] = f.positions_f[i];

  SpeKernelParams params;
  params.box_edge = f.edge;
  params.cutoff_sq = 6.25f;
  params.n_atoms = static_cast<std::uint32_t>(f.n_atoms);
  params.i_begin = 0;
  params.i_end = static_cast<std::uint32_t>(f.n_atoms);
  const auto spe =
      run_spe_accel_kernel(SimdVariant::kSimdAccel, params, ls, ls_pos, ls_acc);

  md::ReferenceKernel ref;
  const auto host =
      ref.compute(f.positions_d, md::PeriodicBox(f.edge), md::LjParams{}, 1.0);

  EXPECT_EQ(spe.stats.candidates, 2 * host.stats.candidates);
  EXPECT_EQ(spe.stats.interacting % 2, 0u);
  EXPECT_NEAR(static_cast<double>(spe.stats.interacting) / 2.0,
              static_cast<double>(host.stats.interacting),
              0.01 * static_cast<double>(host.stats.interacting) + 1.0);
}

}  // namespace
}  // namespace emdpa::cell
