#include <gtest/gtest.h>

#include <cmath>

#include "cellsim/spe_kernel.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::cell {
namespace {

/// Fixture: a wrapped single-precision fluid loaded into a local store.
class SpeKernelTest : public ::testing::Test {
 protected:
  void load_fluid(std::size_t n) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload w = md::make_lattice_workload(spec);
    for (auto& p : w.system.positions()) p = w.box.wrap(p);

    n_ = n;
    edge_ = static_cast<float>(w.box.edge());
    positions_d_.clear();
    for (const auto& p : w.system.positions()) positions_d_.push_back(p);

    ls_pos_ = ls_.allocate(n * sizeof(emdpa::Vec4f), "pos");
    ls_acc_ = ls_.allocate(n * sizeof(emdpa::Vec4f), "acc");
    auto* pos = ls_.data_at<emdpa::Vec4f>(ls_pos_, n);
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = emdpa::Vec4f(emdpa::vec_cast<float>(positions_d_[i]), 0.0f);
    }

    params_.box_edge = edge_;
    params_.cutoff_sq = 6.25f;
    params_.epsilon = 1.0f;
    params_.sigma = 1.0f;
    params_.inv_mass = 1.0f;
    params_.n_atoms = static_cast<std::uint32_t>(n);
    params_.i_begin = 0;
    params_.i_end = static_cast<std::uint32_t>(n);
  }

  std::vector<emdpa::Vec4f> run(SimdVariant variant) {
    last_result_ = run_spe_accel_kernel(variant, params_, ls_, ls_pos_, ls_acc_);
    const auto* acc = ls_.data_at<emdpa::Vec4f>(ls_acc_, n_);
    return {acc, acc + n_};
  }

  std::size_t n_ = 0;
  float edge_ = 0;
  std::vector<emdpa::Vec3d> positions_d_;
  LocalStore ls_;
  LsAddr ls_pos_, ls_acc_;
  SpeKernelParams params_;
  SpeKernelResult last_result_;
};

TEST_F(SpeKernelTest, AllVariantsProduceIdenticalPhysics) {
  load_fluid(125);
  const auto baseline = run(SimdVariant::kOriginal);
  for (auto v : kAllSimdVariants) {
    const auto result = run(v);
    for (std::size_t i = 0; i < n_; ++i) {
      EXPECT_EQ(result[i].x, baseline[i].x) << to_string(v) << " atom " << i;
      EXPECT_EQ(result[i].y, baseline[i].y) << to_string(v);
      EXPECT_EQ(result[i].z, baseline[i].z) << to_string(v);
      EXPECT_EQ(result[i].w, baseline[i].w) << to_string(v);  // PE share
    }
  }
}

TEST_F(SpeKernelTest, MatchesDoubleReferenceWithinFloatTolerance) {
  load_fluid(125);
  const auto spe = run(SimdVariant::kSimdAccel);

  md::ReferenceKernel ref(md::MinImageStrategy::kRound);
  md::LjParams lj;
  const auto expect =
      ref.compute(positions_d_, md::PeriodicBox(edge_), lj, 1.0);

  double pe_spe = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double scale = std::fabs(expect.accelerations[i].x) + 1.0;
    EXPECT_NEAR(spe[i].x, expect.accelerations[i].x, 5e-3 * scale);
    pe_spe += spe[i].w;
  }
  EXPECT_NEAR(pe_spe, expect.potential_energy,
              5e-4 * std::fabs(expect.potential_energy));
}

TEST_F(SpeKernelTest, PairStatsMatchBruteForce) {
  load_fluid(64);
  run(SimdVariant::kSimdAccel);
  EXPECT_EQ(last_result_.stats.candidates, 64u * 63u);
  EXPECT_GT(last_result_.stats.interacting, 0u);
  EXPECT_LT(last_result_.stats.interacting, last_result_.stats.candidates);
}

TEST_F(SpeKernelTest, PartialRangeComputesOnlyOwnedAtoms) {
  load_fluid(64);
  params_.i_begin = 16;
  params_.i_end = 32;
  // Poison the output array to detect stray writes.
  auto* acc = ls_.data_at<emdpa::Vec4f>(ls_acc_, n_);
  for (std::size_t i = 0; i < n_; ++i) acc[i] = {-99, -99, -99, -99};

  const auto result = run(SimdVariant::kSimdAccel);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(result[i].x, -99.0f);
  for (std::size_t i = 16; i < 32; ++i) EXPECT_NE(result[i].x, -99.0f);
  for (std::size_t i = 32; i < n_; ++i) EXPECT_EQ(result[i].x, -99.0f);
  EXPECT_EQ(last_result_.stats.candidates, 16u * 63u);
}

TEST_F(SpeKernelTest, DisjointRangesTileTheWholeProblem) {
  load_fluid(64);
  // 4 SPE-like slices whose stats must sum to the full run's stats.
  std::uint64_t candidates = 0;
  for (int s = 0; s < 4; ++s) {
    params_.i_begin = static_cast<std::uint32_t>(s * 16);
    params_.i_end = static_cast<std::uint32_t>((s + 1) * 16);
    run(SimdVariant::kSimdAccel);
    candidates += last_result_.stats.candidates;
  }
  EXPECT_EQ(candidates, 64u * 63u);
}

TEST_F(SpeKernelTest, InvalidRangeThrows) {
  load_fluid(32);
  params_.i_begin = 20;
  params_.i_end = 10;
  EXPECT_THROW(run(SimdVariant::kOriginal), ContractViolation);
  params_.i_begin = 0;
  params_.i_end = 33;
  EXPECT_THROW(run(SimdVariant::kOriginal), ContractViolation);
}

TEST_F(SpeKernelTest, WorkCountsShrinkAcrossTheStaircase) {
  load_fluid(125);
  SpeOpCosts costs;  // default calibration
  double prev_cycles = 1e300;
  for (auto v : kAllSimdVariants) {
    run(v);
    const double cycles = last_result_.work.cycles(costs).value();
    EXPECT_LT(cycles, prev_cycles * 1.001) << to_string(v);
    prev_cycles = cycles;
  }
}

TEST_F(SpeKernelTest, OriginalVariantIsBranchHeavy) {
  load_fluid(64);
  run(SimdVariant::kOriginal);
  const auto original_branches = last_result_.work.branch_taken;
  run(SimdVariant::kSimdAccel);
  EXPECT_GT(original_branches, 2 * last_result_.work.branch_taken);
}

TEST_F(SpeKernelTest, SimdVariantsShiftWorkFromScalarToSimd) {
  load_fluid(64);
  run(SimdVariant::kOriginal);
  const auto scalar_v0 = last_result_.work.scalar;
  EXPECT_EQ(last_result_.work.simd, 0u);  // fully scalar port
  run(SimdVariant::kSimdAccel);
  EXPECT_LT(last_result_.work.scalar, scalar_v0 / 3);
  EXPECT_GT(last_result_.work.simd, 0u);
}

TEST(SimdVariantNames, AreUniqueAndStable) {
  EXPECT_STREQ(to_string(SimdVariant::kOriginal), "original");
  EXPECT_STREQ(to_string(SimdVariant::kSimdReflect), "simd-unit-cell-reflection");
  EXPECT_STREQ(to_string(SimdVariant::kSimdAccel), "simd-acceleration");
}

}  // namespace
}  // namespace emdpa::cell
