#include <gtest/gtest.h>

#include "cellsim/local_store.h"
#include "core/error.h"

namespace emdpa::cell {
namespace {

TEST(LocalStore, DefaultCapacityIs256K) {
  LocalStore ls;
  EXPECT_EQ(ls.capacity(), 256u * 1024u);
  EXPECT_EQ(ls.bytes_allocated(), 0u);
  EXPECT_EQ(ls.bytes_free(), 256u * 1024u);
}

TEST(LocalStore, RejectsUnalignedCapacity) {
  EXPECT_THROW(LocalStore(1000), ContractViolation);
}

TEST(LocalStore, AllocationsAreQuadwordAligned) {
  LocalStore ls;
  const LsAddr a = ls.allocate(10, "a");  // rounds to 16
  const LsAddr b = ls.allocate(1, "b");
  EXPECT_EQ(a.offset % 16, 0u);
  EXPECT_EQ(b.offset % 16, 0u);
  EXPECT_EQ(b.offset, 16u);
  EXPECT_EQ(ls.bytes_allocated(), 32u);
}

TEST(LocalStore, OverflowThrowsWithLabel) {
  LocalStore ls(1024);
  ls.allocate(1024, "everything");
  try {
    ls.allocate(16, "one-more");
    FAIL() << "expected overflow";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("one-more"), std::string::npos);
  }
}

TEST(LocalStore, ExactFitSucceeds) {
  LocalStore ls(1024);
  EXPECT_NO_THROW(ls.allocate(512, "half"));
  EXPECT_NO_THROW(ls.allocate(512, "other half"));
  EXPECT_EQ(ls.bytes_free(), 0u);
}

TEST(LocalStore, TwoFullPositionArraysFor2048AtomsFit) {
  // The paper's configuration: 2048 atoms x 16 B positions + accelerations
  // alongside a 48 KB program image leaves plenty of the 256 KB LS.
  LocalStore ls;
  ls.allocate(48 * 1024, "program");
  EXPECT_NO_THROW(ls.allocate(2048 * 16, "positions"));
  EXPECT_NO_THROW(ls.allocate(2048 * 16, "accelerations"));
}

TEST(LocalStore, HugeSystemOverflows) {
  // An 8192-atom system's positions (128 KB) fit next to the program image,
  // but the acceleration array no longer does — the real porting constraint
  // that caps the per-SPE resident problem size.
  LocalStore ls;
  ls.allocate(48 * 1024, "program");
  ls.allocate(8192 * 16, "positions");
  EXPECT_THROW(ls.allocate(8192 * 16, "accelerations"), ContractViolation);
}

TEST(LocalStore, ResetReclaimsSpace) {
  LocalStore ls(1024);
  ls.allocate(1024, "all");
  ls.reset();
  EXPECT_EQ(ls.bytes_allocated(), 0u);
  EXPECT_NO_THROW(ls.allocate(1024, "again"));
}

TEST(LocalStore, DataRoundTrip) {
  LocalStore ls;
  const LsAddr addr = ls.allocate(64, "buf");
  const float src[4] = {1.5f, -2.5f, 3.5f, 4.5f};
  ls.write_bytes(addr, src, sizeof(src));
  float dst[4] = {};
  ls.read_bytes(addr, dst, sizeof(dst));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(src[i], dst[i]);
}

TEST(LocalStore, TypedAccess) {
  LocalStore ls;
  const LsAddr addr = ls.allocate(8 * sizeof(float), "floats");
  float* p = ls.data_at<float>(addr, 8);
  p[7] = 42.0f;
  const LocalStore& cls = ls;
  EXPECT_EQ(cls.data_at<float>(addr, 8)[7], 42.0f);
}

TEST(LocalStore, OutOfRangeAccessThrows) {
  LocalStore ls(1024);
  const LsAddr addr = ls.allocate(16, "buf");
  EXPECT_THROW(ls.data_at<float>(LsAddr{1020}, 4), ContractViolation);
  float buf[64];
  EXPECT_THROW(ls.read_bytes(LsAddr{addr.offset + 1020}, buf, 16),
               ContractViolation);
}

}  // namespace
}  // namespace emdpa::cell
