#include <gtest/gtest.h>

#include "cellsim/cell_md_app.h"
#include "cellsim/spe_kernel.h"
#include "core/error.h"
#include "md/backend.h"
#include "md/workload.h"

namespace emdpa::cell {
namespace {

md::RunConfig config_for(std::size_t n, int steps = 2) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

CellRunOptions tiled_options(std::size_t tile = 256) {
  CellRunOptions options;
  options.data_layout = SpeDataLayout::kTiledStreaming;
  options.tile_atoms = tile;
  return options;
}

TEST(TiledStreaming, NameCarriesLayoutTag) {
  EXPECT_EQ(CellBackend(tiled_options()).name(),
            "cell-8spe[persistent-mailbox][tiled]");
}

TEST(TiledStreaming, RejectsEmptyTiles) {
  CellRunOptions options = tiled_options(0);
  EXPECT_THROW(CellBackend(options).run(config_for(64)), ContractViolation);
}

TEST(TiledStreaming, BitIdenticalToResidentLayout) {
  const auto cfg = config_for(512, 3);
  const auto resident = CellBackend().run(cfg);
  const auto tiled = CellBackend(tiled_options(128)).run(cfg);
  for (std::size_t i = 0; i < resident.final_state.size(); ++i) {
    EXPECT_EQ(resident.final_state.positions()[i],
              tiled.final_state.positions()[i]);
    EXPECT_EQ(resident.final_state.velocities()[i],
              tiled.final_state.velocities()[i]);
  }
  for (std::size_t s = 0; s < resident.energies.size(); ++s) {
    EXPECT_DOUBLE_EQ(resident.energies[s].potential,
                     tiled.energies[s].potential);
  }
}

TEST(TiledStreaming, TileSizeDoesNotChangePhysics) {
  const auto cfg = config_for(256, 2);
  const auto a = CellBackend(tiled_options(64)).run(cfg);
  const auto b = CellBackend(tiled_options(100)).run(cfg);  // ragged tiles
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
}

TEST(TiledStreaming, DmaHidesBehindComputeAtScale) {
  // At 1024+ atoms each tile's compute dwarfs its transfer, so the tiled
  // runtime matches the resident runtime despite moving the same data.
  const auto cfg = config_for(1024, 2);
  const double resident = CellBackend().run(cfg).device_time.to_seconds();
  const double tiled =
      CellBackend(tiled_options(256)).run(cfg).device_time.to_seconds();
  EXPECT_NEAR(tiled, resident, 0.02 * resident);
}

TEST(TiledStreaming, LiftsTheResidentSizeLimit) {
  // 8192 atoms: two full quadword arrays (256 KB) + program image cannot
  // fit a 256 KB local store, but the streaming layout runs fine.
  const auto cfg = config_for(8192, 1);
  EXPECT_THROW(CellBackend().run(cfg), ContractViolation);
  EXPECT_NO_THROW(CellBackend(tiled_options(512)).run(cfg));
}

TEST(TiledKernel, ValidatesTileBounds) {
  LocalStore ls;
  const LsAddr own = ls.allocate(16 * sizeof(emdpa::Vec4f), "own");
  const LsAddr tile = ls.allocate(16 * sizeof(emdpa::Vec4f), "tile");
  const LsAddr acc = ls.allocate(16 * sizeof(emdpa::Vec4f), "acc");
  SpeKernelParams params;
  params.n_atoms = 16;
  params.i_begin = 0;
  params.i_end = 16;
  EXPECT_THROW(run_spe_accel_kernel_tile(SimdVariant::kSimdAccel, params, ls,
                                         own, tile, /*tile_begin=*/8,
                                         /*tile_count=*/16, acc, true),
               ContractViolation);
}

TEST(TiledKernel, TilesPartitionTheResidentResult) {
  // Build a small system in an LS and compare: resident kernel vs two tiles
  // through the tiled kernel.
  md::WorkloadSpec spec;
  spec.n_atoms = 64;
  md::Workload w = md::make_lattice_workload(spec);
  for (auto& p : w.system.positions()) p = w.box.wrap(p);

  LocalStore ls;
  const LsAddr pos = ls.allocate(64 * sizeof(emdpa::Vec4f), "pos");
  const LsAddr acc_resident = ls.allocate(64 * sizeof(emdpa::Vec4f), "accA");
  const LsAddr acc_tiled = ls.allocate(64 * sizeof(emdpa::Vec4f), "accB");
  auto* p = ls.data_at<emdpa::Vec4f>(pos, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    p[i] = emdpa::Vec4f(emdpa::vec_cast<float>(w.system.positions()[i]), 0.0f);
  }

  SpeKernelParams params;
  params.box_edge = static_cast<float>(w.box.edge());
  params.cutoff_sq = 6.25f;
  params.n_atoms = 64;
  params.i_begin = 0;
  params.i_end = 64;

  run_spe_accel_kernel(SimdVariant::kSimdAccel, params, ls, pos, acc_resident);
  // Tiled: whole position array doubles as "own" and as the tile source.
  run_spe_accel_kernel_tile(SimdVariant::kSimdAccel, params, ls, pos, pos, 0,
                            32, acc_tiled, true);
  const LsAddr second_half{
      pos.offset + static_cast<std::uint32_t>(32 * sizeof(emdpa::Vec4f))};
  run_spe_accel_kernel_tile(SimdVariant::kSimdAccel, params, ls, pos,
                            second_half, 32, 32, acc_tiled, false);

  const auto* a = ls.data_at<emdpa::Vec4f>(acc_resident, 64);
  const auto* b = ls.data_at<emdpa::Vec4f>(acc_tiled, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a[i], b[i]) << "atom " << i;
  }
}

}  // namespace
}  // namespace emdpa::cell
