#include <gtest/gtest.h>

#include "cellsim/cell_cluster.h"
#include "cellsim/cell_md_app.h"
#include "core/error.h"
#include "md/backend.h"

namespace emdpa::cell {
namespace {

md::RunConfig config_for(std::size_t n, int steps = 2) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(RingAllgather, SingleRankIsFree) {
  EXPECT_EQ(ring_allgather_time({}, 1 << 20, 1), ModelTime::zero());
}

TEST(RingAllgather, TimeScalesWithRoundsAndBytes) {
  InterconnectConfig net;
  const ModelTime two = ring_allgather_time(net, 1000, 2);
  const ModelTime five = ring_allgather_time(net, 1000, 5);
  EXPECT_NEAR(five / two, 4.0, 1e-9);  // (5-1)/(2-1)

  const ModelTime big = ring_allgather_time(net, 1'000'000, 2);
  EXPECT_GT(big.to_seconds(), two.to_seconds());
  // 1 MB at 110 MB/s + 50 us latency ~ 9.14 ms.
  EXPECT_NEAR(big.to_seconds(), 1e6 / 110e6 + 50e-6, 1e-4);
}

TEST(CellClusterBackend, ValidatesOptions) {
  ClusterOptions bad;
  bad.n_blades = 0;
  EXPECT_THROW(CellClusterBackend backend(bad), ContractViolation);
  bad = {};
  bad.spes_per_blade = 9;
  EXPECT_THROW(CellClusterBackend backend(bad), ContractViolation);
}

TEST(CellClusterBackend, Name) {
  ClusterOptions options;
  options.n_blades = 4;
  EXPECT_EQ(CellClusterBackend(options).name(), "cell-cluster[4x8spe]");
}

TEST(CellClusterBackend, OneBladeMatchesSingleCellPhysics) {
  const auto cfg = config_for(128, 3);
  ClusterOptions one;
  one.n_blades = 1;
  const auto cluster = CellClusterBackend(one).run(cfg);
  const auto single = CellBackend().run(cfg);
  for (std::size_t i = 0; i < cluster.final_state.size(); ++i) {
    EXPECT_EQ(cluster.final_state.positions()[i],
              single.final_state.positions()[i]);
  }
}

TEST(CellClusterBackend, BladeCountDoesNotChangePhysics) {
  const auto cfg = config_for(128, 3);
  ClusterOptions one, four;
  one.n_blades = 1;
  four.n_blades = 4;
  const auto a = CellClusterBackend(one).run(cfg);
  const auto b = CellClusterBackend(four).run(cfg);
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
}

TEST(CellClusterBackend, ComputeShrinksCommAppears) {
  const auto cfg = config_for(1024, 2);
  ClusterOptions one, four;
  one.n_blades = 1;
  four.n_blades = 4;
  const auto a = CellClusterBackend(one).run(cfg);
  const auto b = CellClusterBackend(four).run(cfg);
  EXPECT_LT(b.breakdown_component("compute").to_seconds(),
            0.35 * a.breakdown_component("compute").to_seconds());
  EXPECT_EQ(a.breakdown_component("interconnect"), ModelTime::zero());
  EXPECT_GT(b.breakdown_component("interconnect").to_seconds(), 0.0);
}

TEST(CellClusterBackend, ScalingIsRealButSublinear) {
  // Steady-state per-step time (step 0 carries the thread launches): blades
  // split the N^2 compute, but the per-step blade orchestration and the
  // O(N) position exchange don't shrink — classic strong-scaling loss.
  const auto cfg = config_for(2048, 2);
  auto steady_step = [&](int blades) {
    ClusterOptions options;
    options.n_blades = blades;
    const auto r = CellClusterBackend(options).run(cfg);
    return r.step_times.back().to_seconds();
  };
  const double t1 = steady_step(1);
  const double t8 = steady_step(8);
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 2.0);  // blades genuinely help at 2048 atoms…
  EXPECT_LT(speedup, 6.5);  // …but fall well short of the ideal 8x
}

}  // namespace
}  // namespace emdpa::cell
