// Proves the documented recovery behaviour at every fault-injection site:
//
//   cellsim.dma       -> the MFC retries, charging request_latency per
//                        attempt; a third consecutive failure aborts typed
//   cellsim.mailbox   -> the PPE re-signals at mailbox_signal cost each
//   mtasim.stream     -> the lost stream's share is re-issued serially
//   md.list_build     -> --degrade falls back to the reference kernel,
//                        otherwise a RuntimeFailure with step/kernel context
//   md.checkpoint_io  -> the interval is skipped and the next one retries
//
// Each failure path here is unreachable in a healthy run; these tests are
// the only thing standing between "documented" and "assumed".
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>

#include "cellsim/cost_model.h"
#include "cellsim/dma.h"
#include "cellsim/spe_context.h"
#include "core/aligned_buffer.h"
#include "core/error.h"
#include "core/fault_injection.h"
#include "md/backend.h"
#include "md/checkpoint_manager.h"
#include "md/simulation.h"
#include "mtasim/stream_machine.h"

namespace emdpa {
namespace {

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

fault::Plan hit(std::uint64_t first, std::uint64_t count = 1) {
  fault::Plan plan;
  plan.first_hit = first;
  plan.count = count;
  return plan;
}

// --- cellsim.dma ----------------------------------------------------------

TEST_F(FaultRecoveryTest, DmaRetryChargesOneRequestLatencyPerAttempt) {
  cell::LocalStore ls;
  AlignedBuffer<float> host(64);
  const cell::DmaConfig config;

  cell::DmaEngine clean(config);
  const cell::LsAddr a = ls.allocate(64, "a");
  clean.get(ls, a, host.data(), 64, /*tag=*/0);
  const double clean_wait =
      clean.wait_on_tags(1u, ModelTime::zero()).to_seconds();

  cell::DmaEngine faulted(config);
  {
    fault::ScopedFault fault("cellsim.dma", hit(1, 2));  // two transient drops
    faulted.get(ls, a, host.data(), 64, /*tag=*/0);
  }
  EXPECT_EQ(faulted.retries(), 2u);
  EXPECT_DOUBLE_EQ(faulted.wait_on_tags(1u, ModelTime::zero()).to_seconds(),
                   clean_wait + 2 * config.request_latency.to_seconds());
  // The data still arrived despite the modelled retries.
  EXPECT_EQ(faulted.bytes_transferred(), clean.bytes_transferred());
}

TEST_F(FaultRecoveryTest, DmaGivesUpAfterMaxAttempts) {
  cell::LocalStore ls;
  AlignedBuffer<float> host(64);
  cell::DmaEngine dma;
  const cell::LsAddr a = ls.allocate(64, "a");
  fault::ScopedFault fault("cellsim.dma",
                           hit(1, cell::DmaEngine::kMaxAttempts));
  EXPECT_THROW(dma.get(ls, a, host.data(), 64, 0), RuntimeFailure);
}

// --- cellsim.mailbox ------------------------------------------------------

TEST_F(FaultRecoveryTest, MailboxDropIsReSignalled) {
  cell::CellConfig config;
  cell::SpeContext spe(0, config);
  spe.launch_thread();

  const double one_signal = config.mailbox_signal.to_seconds();
  ModelTime cost;
  {
    fault::ScopedFault fault("cellsim.mailbox", hit(1));
    cost = spe.signal(7);
  }
  EXPECT_DOUBLE_EQ(cost.to_seconds(), 2 * one_signal);
  EXPECT_EQ(spe.signal_retries(), 1u);
  // The word was delivered on the retry.
  EXPECT_EQ(spe.mailboxes().inbound.pop(), 7u);
}

TEST_F(FaultRecoveryTest, MailboxWedgedSpeAbortsTyped) {
  cell::CellConfig config;
  cell::SpeContext spe(0, config);
  spe.launch_thread();
  fault::ScopedFault fault("cellsim.mailbox",
                           hit(1, cell::SpeContext::kMaxSignalAttempts));
  EXPECT_THROW(spe.signal(7), RuntimeFailure);
}

// --- mtasim.stream --------------------------------------------------------

TEST_F(FaultRecoveryTest, StreamFaultReissuesItsShareSerially) {
  const mta::MtaConfig config;
  mta::StreamMachine clean(config);
  clean.charge_parallel(12800.0, 128);

  mta::StreamMachine faulted(config);
  {
    fault::ScopedFault fault("mtasim.stream", hit(1));
    faulted.charge_parallel(12800.0, 128);
  }
  // One stream's share (100 instructions) re-issued at serial pipeline cost.
  const double serial_share_s =
      100.0 * config.pipeline_depth / config.clock_hz;
  EXPECT_NEAR(faulted.elapsed().to_seconds(),
              clean.elapsed().to_seconds() + serial_share_s, 1e-15);
  EXPECT_EQ(faulted.ops().get("mta.stream_reissues"), 1u);
  EXPECT_EQ(faulted.ops().get("mta.reissued_instructions"), 100u);
  // Total useful work is unchanged.
  EXPECT_EQ(faulted.ops().get("mta.parallel_instructions"),
            clean.ops().get("mta.parallel_instructions"));
}

// --- md.list_build --------------------------------------------------------

md::Simulation::Options list_sim_options(bool degrade) {
  md::Simulation::Options options;
  options.workload.n_atoms = 256;
  options.kernel = md::SimKernel::kNeighborList;
  options.skin = 0.1;  // tight skin: the hot liquid forces rebuilds quickly
  options.degrade_to_reference = degrade;
  return options;
}

TEST_F(FaultRecoveryTest, ListBuildFailureDegradesToReferenceKernel) {
  md::Simulation sim(list_sim_options(/*degrade=*/true));
  ASSERT_EQ(sim.kernel(), md::SimKernel::kNeighborList);

  // Every rebuild from now on fails; the first one the skin policy triggers
  // must flip the run onto the reference kernel and keep going.
  fault::ScopedFault fault("md.list_build", hit(1, 1u << 20));
  sim.run(100);

  EXPECT_TRUE(sim.degraded());
  EXPECT_EQ(sim.kernel(), md::SimKernel::kReference);
  EXPECT_EQ(sim.current_step(), 100);
  EXPECT_TRUE(md::state_is_finite(sim.system()));
  EXPECT_TRUE(std::isfinite(sim.last_energies().total()));
}

TEST_F(FaultRecoveryTest, ListBuildFailureWithoutDegradeAbortsWithContext) {
  md::Simulation sim(list_sim_options(/*degrade=*/false));
  fault::ScopedFault fault("md.list_build", hit(1, 1u << 20));
  try {
    sim.run(100);
    FAIL() << "the injected rebuild failure should have aborted the run";
  } catch (const RuntimeFailure& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
    const ErrorContext* ctx = error_context(e);
    ASSERT_NE(ctx, nullptr);
    EXPECT_GT(ctx->step, 0);
    EXPECT_EQ(ctx->kernel, "neighbor-list");
  }
}

TEST_F(FaultRecoveryTest, DegradedTrajectoryStaysOnReferencePhysics) {
  // After the fallback, stepping from the restored state on the reference
  // kernel must match a reference-kernel run resumed from the same state.
  md::Simulation faulted(list_sim_options(/*degrade=*/true));
  {
    fault::ScopedFault fault("md.list_build", hit(1, 1u << 20));
    faulted.run(40);
  }
  ASSERT_TRUE(faulted.degraded());

  std::stringstream checkpoint;
  faulted.save(checkpoint);

  md::Simulation::Options reference_options;
  reference_options.workload.n_atoms = 256;
  reference_options.kernel = md::SimKernel::kReference;
  md::Simulation replay = md::Simulation::resume(checkpoint, reference_options);
  faulted.run(10);
  replay.run(10);
  for (std::size_t i = 0; i < faulted.system().size(); ++i) {
    EXPECT_EQ(faulted.system().positions()[i], replay.system().positions()[i]);
  }
}

// --- md.checkpoint_io (through the backend's periodic-save loop) ----------

TEST_F(FaultRecoveryTest, BackendSkipsFailedCheckpointAndRetriesNextInterval) {
  const std::string path =
      std::filesystem::path(::testing::TempDir()) / "eio.ckpt";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  md::RunConfig config;
  config.workload.n_atoms = 64;
  config.steps = 20;
  config.checkpoint_every = 5;
  config.checkpoint_path = path;

  md::HostParallelBackend backend;
  fault::ScopedFault fault("md.checkpoint_io", hit(1));  // first save EIOs
  const md::RunResult result = backend.run(config);

  // Intervals at steps 5/10/15/20: the first failed, the other three
  // committed, and the run itself never noticed.
  EXPECT_EQ(result.metadata.at("checkpoint_failures"), 1.0);
  EXPECT_EQ(result.metadata.at("checkpoint_saves"), 3.0);
  EXPECT_EQ(result.energies.size(), 21u);

  const md::Checkpoint cp = md::CheckpointManager::load_file(path);
  EXPECT_EQ(cp.step, 20);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// --- NumericalFailure: checkpoint-then-abort ------------------------------

TEST_F(FaultRecoveryTest, WatchdogAbortWritesEmergencyCheckpoint) {
  const std::string path =
      std::filesystem::path(::testing::TempDir()) / "abort.ckpt";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  md::RunConfig config;
  config.workload.n_atoms = 64;
  config.steps = 200;
  config.checkpoint_path = path;  // emergency destination, no periodic saves
  config.drift_tolerance = 1e-15;  // no integrator satisfies this

  md::HostParallelBackend backend;
  try {
    backend.run(config);
    FAIL() << "an impossible drift tolerance should have tripped the watchdog";
  } catch (const NumericalFailure& e) {
    const ErrorContext* ctx = error_context(e);
    ASSERT_NE(ctx, nullptr);
    EXPECT_GT(ctx->step, 0);
    EXPECT_EQ(ctx->backend, "host-parallel");

    // The state was still finite, so the backend parked it for --resume.
    const md::Checkpoint cp = md::CheckpointManager::load_file(path);
    EXPECT_EQ(cp.step, ctx->step);
    EXPECT_TRUE(md::state_is_finite(cp.system));
  }
}

}  // namespace
}  // namespace emdpa
