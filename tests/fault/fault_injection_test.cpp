// Registry semantics of the deterministic fault-injection layer: hit-range
// and Bernoulli plans, spec parsing, counters, and the RAII test helper.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/fault_injection.h"

namespace emdpa::fault {
namespace {

/// Every test leaves the process-wide registry empty; a leaked armed site
/// would poison unrelated suites in the same binary.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

std::vector<bool> fire_pattern(const char* site, int hits) {
  std::vector<bool> pattern;
  for (int i = 0; i < hits; ++i) {
    pattern.push_back(Registry::instance().should_fail(site));
  }
  return pattern;
}

TEST_F(FaultRegistryTest, DisarmedSiteNeverFires) {
  EXPECT_FALSE(Registry::instance().any_armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(Registry::instance().should_fail("md.list_build"));
  }
  // Unarmed hits are not even counted: the fast path must stay free.
  EXPECT_EQ(Registry::instance().stats("md.list_build").hits, 0u);
}

TEST_F(FaultRegistryTest, FiresOnExactHitIndex) {
  Plan plan;
  plan.first_hit = 3;
  ScopedFault fault("site.a", plan);
  EXPECT_EQ(fire_pattern("site.a", 5),
            (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(fault.stats().hits, 5u);
  EXPECT_EQ(fault.stats().fires, 1u);
}

TEST_F(FaultRegistryTest, FiresOnConsecutiveRange) {
  Plan plan;
  plan.first_hit = 2;
  plan.count = 3;
  ScopedFault fault("site.a", plan);
  EXPECT_EQ(fire_pattern("site.a", 6),
            (std::vector<bool>{false, true, true, true, false, false}));
}

TEST_F(FaultRegistryTest, SitesAreIndependent) {
  Plan first;  // default: hit 1 only
  Plan second;
  second.first_hit = 2;
  ScopedFault a("site.a", first);
  ScopedFault b("site.b", second);
  EXPECT_TRUE(Registry::instance().should_fail("site.a"));
  EXPECT_FALSE(Registry::instance().should_fail("site.b"));
  EXPECT_TRUE(Registry::instance().should_fail("site.b"));
  EXPECT_FALSE(Registry::instance().should_fail("site.c"));
}

TEST_F(FaultRegistryTest, BernoulliDrawsAreReproducible) {
  Plan plan;
  plan.probability = 0.5;
  plan.seed = 42;
  std::vector<bool> first_run, second_run;
  {
    ScopedFault fault("site.p", plan);
    first_run = fire_pattern("site.p", 64);
  }
  {
    ScopedFault fault("site.p", plan);
    second_run = fire_pattern("site.p", 64);
  }
  EXPECT_EQ(first_run, second_run);
  // p=0.5 over 64 independent draws: both outcomes must appear.
  EXPECT_NE(std::count(first_run.begin(), first_run.end(), true), 0);
  EXPECT_NE(std::count(first_run.begin(), first_run.end(), false), 0);
}

TEST_F(FaultRegistryTest, BernoulliEdgeProbabilities) {
  Plan never;
  never.probability = 0.0;
  Plan always;
  always.probability = 1.0;
  ScopedFault n("site.never", never);
  ScopedFault a("site.always", always);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(Registry::instance().should_fail("site.never"));
    EXPECT_TRUE(Registry::instance().should_fail("site.always"));
  }
}

TEST_F(FaultRegistryTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault fault("site.a");
    EXPECT_TRUE(Registry::instance().any_armed());
  }
  EXPECT_FALSE(Registry::instance().any_armed());
  EXPECT_FALSE(Registry::instance().should_fail("site.a"));
}

TEST_F(FaultRegistryTest, SpecParsesSingleHit) {
  Registry::instance().arm_from_spec("md.list_build:2");
  EXPECT_EQ(fire_pattern("md.list_build", 3),
            (std::vector<bool>{false, true, false}));
}

TEST_F(FaultRegistryTest, SpecParsesHitRangeAndMultipleSites) {
  Registry::instance().arm_from_spec("cellsim.dma:1x2;md.checkpoint_io:3");
  EXPECT_EQ(fire_pattern("cellsim.dma", 3),
            (std::vector<bool>{true, true, false}));
  EXPECT_EQ(fire_pattern("md.checkpoint_io", 3),
            (std::vector<bool>{false, false, true}));
}

TEST_F(FaultRegistryTest, SpecParsesProbabilityWithSeed) {
  Registry::instance().arm_from_spec("mtasim.stream%1.0@7");
  EXPECT_TRUE(Registry::instance().should_fail("mtasim.stream"));
}

TEST_F(FaultRegistryTest, SpecRejectsMalformedEntries) {
  auto& registry = Registry::instance();
  EXPECT_THROW(registry.arm_from_spec("no-separator"), RuntimeFailure);
  EXPECT_THROW(registry.arm_from_spec("site:banana"), RuntimeFailure);
  EXPECT_THROW(registry.arm_from_spec("site:0"), RuntimeFailure);  // 1-based
  EXPECT_THROW(registry.arm_from_spec("site%2.0"), RuntimeFailure);
  EXPECT_THROW(registry.arm_from_spec("site%-0.5"), RuntimeFailure);
  EXPECT_THROW(registry.arm_from_spec(":1"), RuntimeFailure);  // empty site
  EXPECT_THROW(registry.arm_from_spec("site%0.5@x"), RuntimeFailure);
}

TEST_F(FaultRegistryTest, ResetClearsSitesAndCounters) {
  Registry::instance().arm_from_spec("site.a:1");
  (void)Registry::instance().should_fail("site.a");
  Registry::instance().reset();
  EXPECT_FALSE(Registry::instance().any_armed());
  EXPECT_EQ(Registry::instance().stats("site.a").hits, 0u);
}

}  // namespace
}  // namespace emdpa::fault
