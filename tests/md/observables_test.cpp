#include <gtest/gtest.h>

#include "md/observables.h"

namespace emdpa::md {
namespace {

TEST(Observables, KineticEnergyOfStaticSystemIsZero) {
  ParticleSystem ps(10);
  EXPECT_DOUBLE_EQ(kinetic_energy_of(ps), 0.0);
}

TEST(Observables, KineticEnergySingleParticle) {
  ParticleSystem ps(1);
  ps.velocities()[0] = {3, 0, 4};  // |v|^2 = 25
  EXPECT_DOUBLE_EQ(kinetic_energy_of(ps), 12.5);
}

TEST(Observables, KineticEnergyScalesWithMass) {
  ParticleSystem ps(1);
  ps.velocities()[0] = {1, 1, 1};
  ps.set_mass(4.0);
  EXPECT_DOUBLE_EQ(kinetic_energy_of(ps), 6.0);
}

TEST(Observables, TemperatureFromEquipartition) {
  // T = 2*KE / (3N): one atom with KE = 1.5 -> T = 1.
  ParticleSystem ps(1);
  ps.velocities()[0] = {1, 1, 1};  // KE = 1.5
  EXPECT_DOUBLE_EQ(temperature_of(ps), 1.0);
}

TEST(Observables, TemperatureOfEmptySystemIsZero) {
  ParticleSystem ps;
  EXPECT_DOUBLE_EQ(temperature_of(ps), 0.0);
}

TEST(Observables, MomentumSumsVelocities) {
  ParticleSystem ps(2);
  ps.velocities()[0] = {1, 2, 3};
  ps.velocities()[1] = {-1, 0, 1};
  ps.set_mass(2.0);
  EXPECT_EQ(total_momentum_of(ps), (Vec3d{0, 4, 8}));
}

TEST(Observables, CenterOfMass) {
  ParticleSystem ps(2);
  ps.positions()[0] = {0, 0, 0};
  ps.positions()[1] = {2, 4, 6};
  EXPECT_EQ(center_of_mass_of(ps), (Vec3d{1, 2, 3}));
}

TEST(Observables, CenterOfMassOfEmptySystem) {
  ParticleSystem ps;
  EXPECT_EQ(center_of_mass_of(ps), Vec3d{});
}

TEST(Observables, SinglePrecisionInstantiations) {
  ParticleSystemF ps(1);
  ps.velocities()[0] = {2, 0, 0};
  EXPECT_FLOAT_EQ(kinetic_energy_of(ps), 2.0f);
  EXPECT_FLOAT_EQ(total_momentum_of(ps).x, 2.0f);
}

}  // namespace
}  // namespace emdpa::md
