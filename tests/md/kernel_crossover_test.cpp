// Regression pin for the kAuto N^2-vs-list crossover.
//
// HostParallelBackend::kListCrossoverAtoms = 1024 is a measured value, not a
// guess: in the CI native-bench artifacts (BENCH_native.json, Release +
// -march=native) BM_NeighborListParallel beats BM_SoaKernelParallel at 1024
// atoms (~0.6x the N^2 time), is ~3x faster by 2048 and ~10x by 4096, while
// at 512 atoms the list's gather overhead still loses to the N^2 batch
// sweep's perfect streaming.  The margin at 1024 is modest, so the exact
// boundary matters less than its stability: these tests pin the resolution
// rule so a refactor cannot silently change which kernel serves which
// workload size.
#include <gtest/gtest.h>

#include "md/backend.h"
#include "md/simulation.h"

namespace emdpa::md {
namespace {

Simulation make_auto_sim(std::size_t n_atoms) {
  Simulation::Options options;
  options.workload.n_atoms = n_atoms;
  options.kernel = SimKernel::kAuto;
  return Simulation(options);
}

TEST(KernelCrossover, MeasuredBoundaryIsPinned) {
  // If this value changes, re-measure: the native-bench job's
  // BM_SoaKernelParallel / BM_NeighborListParallel rows at 512/1024/2048
  // atoms are the evidence that must move with it.
  EXPECT_EQ(HostParallelBackend::kListCrossoverAtoms, 1024u);
}

TEST(KernelCrossover, AutoSelectsN2BelowBoundary) {
  EXPECT_EQ(make_auto_sim(HostParallelBackend::kListCrossoverAtoms - 1).kernel(),
            SimKernel::kSoaN2);
  EXPECT_EQ(make_auto_sim(256).kernel(), SimKernel::kSoaN2);
}

TEST(KernelCrossover, AutoSelectsListAtAndAboveBoundary) {
  EXPECT_EQ(make_auto_sim(HostParallelBackend::kListCrossoverAtoms).kernel(),
            SimKernel::kNeighborList);
  EXPECT_EQ(make_auto_sim(HostParallelBackend::kListCrossoverAtoms + 1).kernel(),
            SimKernel::kNeighborList);
}

TEST(KernelCrossover, ExplicitChoiceOverridesAuto) {
  Simulation::Options options;
  options.workload.n_atoms = HostParallelBackend::kListCrossoverAtoms * 2;
  options.kernel = SimKernel::kSoaN2;
  EXPECT_EQ(Simulation(options).kernel(), SimKernel::kSoaN2);

  options.workload.n_atoms = 128;
  options.kernel = SimKernel::kNeighborList;
  EXPECT_EQ(Simulation(options).kernel(), SimKernel::kNeighborList);
}

}  // namespace
}  // namespace emdpa::md
