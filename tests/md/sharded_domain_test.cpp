// Unit tests for the slab decomposition (ShardedDomain) and the halo
// edge cases of the sharded neighbour-list build: atoms exactly on shard
// boundaries, shards thinner than the cutoff (widened, not wrong), empty
// shards, and ghost slabs that wrap around the periodic axis back into the
// shard that owns them.  The bulk bitwise contract lives in
// shard_invariance_test.cpp; these tests pin the geometry corners by hand.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/thread_pool.h"
#include "md/parallel_neighbor.h"
#include "md/sharded_domain.h"

namespace emdpa::md {
namespace {

// --------------------------------------------------------------------------
// ShardedDomain geometry
// --------------------------------------------------------------------------

TEST(ShardedDomain, PartitionCoversAxisContiguously) {
  const ShardedDomain domain(16, 2, 5);
  EXPECT_EQ(domain.shard_count(), 5u);
  EXPECT_FALSE(domain.widened());
  EXPECT_EQ(domain.slab_begin(0), 0u);
  EXPECT_EQ(domain.slab_end(domain.shard_count() - 1), 16u);
  for (std::size_t s = 0; s + 1 < domain.shard_count(); ++s) {
    EXPECT_EQ(domain.slab_end(s), domain.slab_begin(s + 1));
    // Quotient/remainder deal: sizes differ by at most one, larger first.
    EXPECT_GE(domain.slab_end(s) - domain.slab_begin(s),
              domain.slab_end(s + 1) - domain.slab_begin(s + 1));
  }
}

TEST(ShardedDomain, ShardOfSlabInvertsSlabBegin) {
  for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    const ShardedDomain domain(17, 2, shards);
    for (std::size_t x = 0; x < domain.cells(); ++x) {
      const std::size_t s = domain.shard_of_slab(x);
      EXPECT_GE(x, domain.slab_begin(s)) << "x=" << x;
      EXPECT_LT(x, domain.slab_end(s)) << "x=" << x;
    }
  }
}

TEST(ShardedDomain, EverySlabIsAtLeastRangeWide) {
  // 16 cells at range 3 admit at most 5 shards; larger requests widen.
  const ShardedDomain domain(16, 3, 8);
  EXPECT_TRUE(domain.widened());
  EXPECT_EQ(domain.requested(), 8u);
  EXPECT_LE(domain.shard_count(), 5u);
  for (std::size_t s = 0; s < domain.shard_count(); ++s) {
    EXPECT_GE(domain.slab_end(s) - domain.slab_begin(s), domain.range());
  }
}

TEST(ShardedDomain, HaloExtendsRangeBothSidesWithWrap) {
  const ShardedDomain domain(16, 2, 4);  // slabs of 4
  EXPECT_EQ(domain.halo_width(1), 8u);   // 4 owned + 2 each side
  EXPECT_EQ(domain.halo_begin(1), 2u);   // slab_begin(1)=4, minus range
  // Shard 0's halo wraps: begins range cells before the end of the axis.
  EXPECT_EQ(domain.halo_begin(0), 14u);
}

TEST(ShardedDomain, HaloClampsToWholeAxisInsteadOfLappingItself) {
  // Two shards of 4 with range 2: the extended view would be 8 = cells, so
  // it clamps to the whole axis and every slab appears exactly once —
  // including the ghost slabs that wrap back into the shard's own run.
  const ShardedDomain domain(8, 2, 2);
  EXPECT_EQ(domain.shard_count(), 2u);
  EXPECT_EQ(domain.halo_width(0), 8u);
  EXPECT_EQ(domain.halo_width(1), 8u);
}

// --------------------------------------------------------------------------
// Sharded build edge cases (each asserts CSR identity against the flat list)
// --------------------------------------------------------------------------

void expect_csr_matches_flat(const std::vector<Vec3d>& positions,
                             const PeriodicBox& box, double cutoff,
                             double skin, std::size_t shards) {
  ParallelNeighborListT<double> flat(skin);
  flat.build(positions, box, cutoff);
  ThreadPool pool(4);
  ShardedNeighborListT<double> sharded(skin, &pool, shards);
  sharded.build(positions, box, cutoff);
  EXPECT_EQ(sharded.directed_entries(), flat.directed_entries());
  ASSERT_EQ(sharded.row_begin(), flat.row_begin());
  ASSERT_EQ(sharded.entries(), flat.entries());
}

TEST(ShardedBuild, AtomsExactlyOnShardBoundaries) {
  // Box of edge 24 with list cutoff 3.0: 16 cells of edge 1.5, range 2,
  // 8 shards of 2 slabs — shard boundaries every 3.0 along x.  Put atoms
  // EXACTLY on every cell boundary plane (so also on every shard boundary)
  // plus a y/z spread that makes them interact.
  const PeriodicBox box(24.0);
  std::vector<Vec3d> positions;
  for (std::size_t k = 0; k < 16; ++k) {
    const double x = 1.5 * static_cast<double>(k);
    for (std::size_t j = 0; j < 8; ++j) {
      positions.push_back({x, 1.1 * static_cast<double>(j), 0.7 * static_cast<double>(k % 3)});
      positions.push_back({x, 1.1 * static_cast<double>(j) + 0.4, 12.0});
    }
  }
  for (const std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    expect_csr_matches_flat(positions, box, 2.5, 0.5, shards);
  }
}

TEST(ShardedBuild, EmptyShardsAreHarmless) {
  // All atoms cluster in the first eighth of the x axis: with 8 shards,
  // seven sweep nothing (and pack only ghost slabs).
  const PeriodicBox box(24.0);
  std::vector<Vec3d> positions;
  for (std::size_t i = 0; i < 64; ++i) {
    positions.push_back({0.04 * static_cast<double>(i % 8),
                         1.3 * static_cast<double>(i / 8),
                         0.9 * static_cast<double>(i % 5)});
  }
  expect_csr_matches_flat(positions, box, 2.5, 0.5, 8);
}

TEST(ShardedBuild, GhostSlabsWrapIntoOwningShard) {
  // Edge 24, list cutoff 6.0: 8 cells of edge 3, range 2.  Two shards of
  // 4 slabs each get a clamped whole-axis halo — the wrap case.  Atoms
  // interact straight across the periodic x boundary.
  const PeriodicBox box(24.0);
  std::vector<Vec3d> positions;
  for (std::size_t i = 0; i < 48; ++i) {
    const double x = (i % 2 == 0) ? 0.3 * static_cast<double>(i % 10)
                                  : 24.0 - 0.3 * static_cast<double>(i % 10);
    positions.push_back({x, 0.8 * static_cast<double>(i % 7),
                         0.8 * static_cast<double>(i / 7)});
  }
  expect_csr_matches_flat(positions, box, 5.5, 0.5, 2);
}

TEST(ShardedBuild, ThinShardRequestWidensAndStaysCorrect) {
  // Edge 12 with list cutoff 3.0: 8 cells, range 2 — at most 4 shards.
  // Requesting 16 must widen (and still build the flat CSR), not reject
  // or alias ghosts.
  const PeriodicBox box(12.0);
  std::vector<Vec3d> positions;
  for (std::size_t i = 0; i < 100; ++i) {
    positions.push_back({0.12 * static_cast<double>(i),
                         0.7 * static_cast<double>(i % 9),
                         0.5 * static_cast<double>(i % 13)});
  }
  ThreadPool pool(4);
  ShardedNeighborListT<double> sharded(0.5, &pool, 16);
  sharded.build(positions, box, 2.5);
  EXPECT_TRUE(sharded.domain().widened());
  EXPECT_LE(sharded.effective_shards(), 4u);
  expect_csr_matches_flat(positions, box, 2.5, 0.5, 16);
}

TEST(ShardedBuild, DegenerateBoxFallsBackToSingleLogicalShard) {
  // Box too small for the stencil: the all-pairs branch runs and reports
  // one logical shard regardless of the request.
  const PeriodicBox box(5.0);
  std::vector<Vec3d> positions;
  for (std::size_t i = 0; i < 32; ++i) {
    positions.push_back({0.15 * static_cast<double>(i),
                         0.3 * static_cast<double>(i % 6),
                         0.25 * static_cast<double>(i % 9)});
  }
  ThreadPool pool(4);
  ShardedNeighborListT<double> sharded(0.3, &pool, 8);
  sharded.build(positions, box, 2.2);
  EXPECT_EQ(sharded.effective_shards(), 1u);
  expect_csr_matches_flat(positions, box, 2.2, 0.3, 8);
}

TEST(ShardedBuild, EnsureAttributesStalenessToTheMovedAtomsShard) {
  // A single atom pushed past half the skin makes exactly one shard stale
  // — the shard owning the cell its NEW position bins into — and the
  // global-OR trigger still rebuilds everything.
  const PeriodicBox box(24.0);
  std::vector<Vec3d> positions;
  for (std::size_t i = 0; i < 256; ++i) {
    positions.push_back({0.09 * static_cast<double>(i),
                         1.1 * static_cast<double>(i % 11),
                         1.3 * static_cast<double>(i % 7)});
  }
  ShardedNeighborListT<double> sharded(0.5, nullptr, 4);
  sharded.build(positions, box, 2.5);
  const std::uint64_t builds_before = sharded.rebuilds();

  std::vector<Vec3d> moved = positions;
  moved[10].y += 0.3;  // > skin/2 = 0.25; x unchanged, stays in shard 0
  ASSERT_TRUE(sharded.ensure(moved, box, 2.5));
  EXPECT_EQ(sharded.rebuilds(), builds_before + 1);
  const auto& stale = sharded.shard_stale();
  ASSERT_EQ(stale.size(), sharded.effective_shards());
  EXPECT_EQ(stale[0], 1);
  for (std::size_t s = 1; s < stale.size(); ++s) {
    EXPECT_EQ(stale[s], 0) << "shard " << s;
  }

  // The rebuilt list must equal a from-scratch flat build of `moved`.
  ParallelNeighborListT<double> flat(0.5);
  flat.build(moved, box, 2.5);
  ASSERT_EQ(sharded.row_begin(), flat.row_begin());
  ASSERT_EQ(sharded.entries(), flat.entries());
}

}  // namespace
}  // namespace emdpa::md
