#include <gtest/gtest.h>

#include <cmath>

#include "md/lj_potential.h"

namespace emdpa::md {
namespace {

TEST(LjPotential, ZeroCrossingAtSigma) {
  LjParams lj;
  EXPECT_NEAR(lj.pair_energy(lj.sigma * lj.sigma), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(lj.zero_crossing(), 1.0);
}

TEST(LjPotential, MinimumAtTwoToTheSixth) {
  LjParams lj;
  const double rmin = lj.minimum_location();
  EXPECT_NEAR(rmin, std::pow(2.0, 1.0 / 6.0), 1e-12);
  EXPECT_NEAR(lj.pair_energy(rmin * rmin), -1.0, 1e-12);
  // Force crosses zero at the minimum.
  EXPECT_NEAR(lj.pair_force_over_r(rmin * rmin), 0.0, 1e-10);
}

TEST(LjPotential, RepulsiveInsideMinimum) {
  LjParams lj;
  EXPECT_GT(lj.pair_force_over_r(0.9 * 0.9), 0.0);
}

TEST(LjPotential, AttractiveOutsideMinimum) {
  LjParams lj;
  EXPECT_LT(lj.pair_force_over_r(1.5 * 1.5), 0.0);
}

TEST(LjPotential, ForceIsNegativeEnergyGradient) {
  // F(r) = -dV/dr, checked by central differences over a range of r.
  LjParams lj;
  for (double r = 0.85; r < 2.4; r += 0.05) {
    const double h = 1e-6;
    const double dv = (lj.pair_energy((r + h) * (r + h)) -
                       lj.pair_energy((r - h) * (r - h))) /
                      (2 * h);
    const double force = lj.pair_force_over_r(r * r) * r;  // F = (F/r) * r
    EXPECT_NEAR(force, -dv, 1e-5 * std::max(1.0, std::fabs(dv)));
  }
}

TEST(LjPotential, EpsilonScalesEnergyAndForce) {
  LjParams lj1;
  LjParams lj3;
  lj3.epsilon = 3.0;
  const double r2 = 1.44;
  EXPECT_NEAR(lj3.pair_energy(r2), 3.0 * lj1.pair_energy(r2), 1e-12);
  EXPECT_NEAR(lj3.pair_force_over_r(r2), 3.0 * lj1.pair_force_over_r(r2), 1e-12);
}

TEST(LjPotential, SigmaScalesLength) {
  LjParams lj2;
  lj2.sigma = 2.0;
  // V_sigma(r) = V_1(r / sigma).
  LjParams lj1;
  const double r = 2.6;
  EXPECT_NEAR(lj2.pair_energy(r * r), lj1.pair_energy((r / 2) * (r / 2)), 1e-12);
}

TEST(LjPotential, CutoffSquared) {
  LjParams lj;
  lj.cutoff = 2.5;
  EXPECT_DOUBLE_EQ(lj.cutoff_squared(), 6.25);
}

TEST(LjPotential, ShiftedFormIsZeroAtCutoff) {
  LjParams lj;
  lj.shifted = true;
  EXPECT_NEAR(lj.pair_energy(lj.cutoff_squared()), 0.0, 1e-15);
}

TEST(LjPotential, ShiftedFormOffsetsByConstant) {
  LjParams plain, shifted;
  shifted.shifted = true;
  const double r2 = 1.21;
  EXPECT_NEAR(shifted.pair_energy(r2),
              plain.pair_energy(r2) - plain.energy_shift(), 1e-15);
}

TEST(LjPotential, ShiftDoesNotChangeForce) {
  LjParams plain, shifted;
  shifted.shifted = true;
  EXPECT_DOUBLE_EQ(shifted.pair_force_over_r(1.1), plain.pair_force_over_r(1.1));
}

TEST(LjPotential, PrecisionCastPreservesFields) {
  LjParams lj;
  lj.epsilon = 2.0;
  lj.sigma = 1.5;
  lj.cutoff = 3.0;
  lj.shifted = true;
  const auto f = lj.cast<float>();
  EXPECT_FLOAT_EQ(f.epsilon, 2.0f);
  EXPECT_FLOAT_EQ(f.sigma, 1.5f);
  EXPECT_FLOAT_EQ(f.cutoff, 3.0f);
  EXPECT_TRUE(f.shifted);
}

TEST(LjPotential, SinglePrecisionAgreesWithDouble) {
  LjParams d;
  const auto f = d.cast<float>();
  for (double r = 0.9; r < 2.4; r += 0.1) {
    const auto ed = d.pair_energy(r * r);
    const auto ef = f.pair_energy(static_cast<float>(r * r));
    EXPECT_NEAR(ed, ef, 1e-4 * std::max(1.0, std::fabs(ed)));
  }
}

}  // namespace
}  // namespace emdpa::md
