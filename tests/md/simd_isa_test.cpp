// Runtime ISA dispatch at the force level: the registry knows which tables
// this binary carries, every available ISA produces BITWISE identical
// forces/energies (the fixed 64-byte accumulation block of kernel_rows.h),
// and the precision seam behaves — sp/mixed stay within the expected drift
// of dp while being exactly reproducible themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/simd_dispatch.h"
#include "md/parallel_neighbor.h"
#include "md/simd_kernels.h"
#include "md/single_precision.h"
#include "md/soa_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

Workload melt_workload(std::size_t n_atoms = 128) {
  WorkloadSpec spec;
  spec.n_atoms = n_atoms;
  return make_lattice_workload(spec);
}

std::vector<Vec3<float>> to_float(const std::vector<Vec3d>& positions) {
  std::vector<Vec3<float>> out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    out[i] = Vec3<float>{static_cast<float>(positions[i].x),
                         static_cast<float>(positions[i].y),
                         static_cast<float>(positions[i].z)};
  }
  return out;
}

template <typename Real>
void expect_bitwise_equal(const ForceResultT<Real>& a,
                          const ForceResultT<Real>& b, const char* what) {
  ASSERT_EQ(a.accelerations.size(), b.accelerations.size());
  for (std::size_t i = 0; i < a.accelerations.size(); ++i) {
    EXPECT_EQ(a.accelerations[i].x, b.accelerations[i].x) << what << " atom " << i;
    EXPECT_EQ(a.accelerations[i].y, b.accelerations[i].y) << what << " atom " << i;
    EXPECT_EQ(a.accelerations[i].z, b.accelerations[i].z) << what << " atom " << i;
  }
  EXPECT_EQ(a.potential_energy, b.potential_energy) << what;
  EXPECT_EQ(a.virial, b.virial) << what;
  EXPECT_EQ(a.stats.interacting, b.stats.interacting) << what;
}

TEST(SimdKernelRegistry, ScalarTableIsAlwaysCompiledIn) {
  EXPECT_NE(simd_kernels::compiled_mask() & simd::isa_bit(simd::SimdType::kScalar),
            0u);
  EXPECT_NE(simd_kernels::rows_for(simd::SimdType::kScalar), nullptr);
}

TEST(SimdKernelRegistry, AvailableIsasAreRankedAndExecutable) {
  const auto available = simd_kernels::available_isas();
  ASSERT_FALSE(available.empty());  // scalar at minimum
  EXPECT_EQ(available.back(), simd::SimdType::kScalar);
  for (const simd::SimdType isa : available) {
    EXPECT_TRUE(simd_kernels::isa_available(isa));
    const simd_kernels::KernelRows& table = simd_kernels::rows(isa);
    EXPECT_EQ(table.isa, isa);
    // Every table carries all six precision variants.
    EXPECT_NE(table.soa_dd, nullptr);
    EXPECT_NE(table.soa_ff, nullptr);
    EXPECT_NE(table.soa_fd, nullptr);
    EXPECT_NE(table.list_dd, nullptr);
    EXPECT_NE(table.list_ff, nullptr);
    EXPECT_NE(table.list_fd, nullptr);
    // Pack widths fill the 64-byte block a whole number of times.
    EXPECT_EQ(simd::block_lanes<double>() % table.width_double, 0u);
    EXPECT_EQ(simd::block_lanes<float>() % table.width_float, 0u);
  }
  // resolve_isa with no request returns the ranking winner.  EMDPA_SIMD may
  // legitimately force something slower (the CI matrix legs do exactly
  // that), in which case the resolved ISA must still be available.
  const simd::SimdType resolved = simd_kernels::resolve_isa();
  EXPECT_TRUE(simd_kernels::isa_available(resolved));
  if (!simd::env_simd_override()) {
    EXPECT_EQ(resolved, available.front());
  }
}

TEST(SimdKernelRegistry, KernelNameReportsDispatchedIsaWidthAndPrecision) {
  for (const simd::SimdType isa : simd_kernels::available_isas()) {
    SoaKernel::Options options;
    options.isa = isa;
    SoaKernel kernel(options);
    EXPECT_EQ(kernel.isa(), isa);
    EXPECT_EQ(kernel.simd_width(),
              simd_kernels::width<double>(simd_kernels::rows(isa)));
    const std::string name = kernel.name();
    EXPECT_NE(name.find(simd::to_string(isa)), std::string::npos) << name;
    EXPECT_NE(name.find("w" + std::to_string(kernel.simd_width())),
              std::string::npos)
        << name;
    EXPECT_NE(name.find("fp64"), std::string::npos) << name;
  }
}

TEST(SimdKernelRegistry, RequestingUnavailableIsaThrowsAtConstruction) {
  // Only meaningful when some ranked ISA is missing here (not compiled in,
  // or CPU too narrow); on a machine with everything this loop is empty.
  for (const simd::SimdType isa : simd::kIsaRanking) {
    if (simd_kernels::isa_available(isa)) continue;
    SoaKernel::Options options;
    options.isa = isa;
    EXPECT_THROW(SoaKernel{options}, RuntimeFailure) << simd::to_string(isa);
  }
}

TEST(SimdIsaParity, SoaForcesBitwiseIdenticalAcrossIsasDp) {
  Workload w = melt_workload();
  LjParams lj;
  const auto available = simd_kernels::available_isas();
  SoaKernel::Options base_options;
  base_options.isa = available.front();
  SoaKernel reference(base_options);
  const ForceResult expected =
      reference.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_GT(expected.stats.interacting, 0u);
  for (const simd::SimdType isa : available) {
    SoaKernel::Options options;
    options.isa = isa;
    SoaKernel kernel(options);
    const ForceResult actual =
        kernel.compute(w.system.positions(), w.box, lj, 1.0);
    expect_bitwise_equal(expected, actual, simd::to_string(isa));
  }
}

TEST(SimdIsaParity, ListForcesBitwiseIdenticalAcrossIsasDp) {
  Workload w = melt_workload();
  LjParams lj;
  const auto available = simd_kernels::available_isas();
  NeighborListKernel::Options base_options;
  base_options.isa = available.front();
  NeighborListKernel reference(base_options);
  const ForceResult expected =
      reference.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_GT(expected.stats.interacting, 0u);
  for (const simd::SimdType isa : available) {
    NeighborListKernel::Options options;
    options.isa = isa;
    NeighborListKernel kernel(options);
    const ForceResult actual =
        kernel.compute(w.system.positions(), w.box, lj, 1.0);
    expect_bitwise_equal(expected, actual, simd::to_string(isa));
  }
}

TEST(SimdIsaParity, SingleAndMixedAlsoBitwiseIdenticalAcrossIsas) {
  // The block-accumulation argument is type-agnostic: it must hold for the
  // float lane paths too (16 lanes per block instead of 8).
  Workload w = melt_workload();
  const auto positions_f = to_float(w.system.positions());
  const PeriodicBoxF box_f(static_cast<float>(w.box.edge()));
  const LjParamsF lj_f = LjParams{}.cast<float>();
  LjParams lj;

  const auto available = simd_kernels::available_isas();
  SoaKernelF::Options sp_base;
  sp_base.isa = available.front();
  SoaKernelF sp_reference(sp_base);
  const ForceResultF sp_expected =
      sp_reference.compute(positions_f, box_f, lj_f, 1.0f);
  SoaKernelMixed::Options mx_base;
  mx_base.isa = available.front();
  SoaKernelMixed mx_reference(mx_base);
  const ForceResult mx_expected =
      mx_reference.compute(w.system.positions(), w.box, lj, 1.0);

  for (const simd::SimdType isa : available) {
    SoaKernelF::Options sp_options;
    sp_options.isa = isa;
    SoaKernelF sp(sp_options);
    expect_bitwise_equal(sp_expected,
                         sp.compute(positions_f, box_f, lj_f, 1.0f),
                         simd::to_string(isa));
    SoaKernelMixed::Options mx_options;
    mx_options.isa = isa;
    SoaKernelMixed mx(mx_options);
    expect_bitwise_equal(mx_expected,
                         mx.compute(w.system.positions(), w.box, lj, 1.0),
                         simd::to_string(isa));
  }
}

TEST(PrecisionSeam, MixedAndSingleTrackDoubleWithinFloatError) {
  // One evaluation: sp/mixed forces must agree with dp to single-precision
  // relative accuracy.  (Trajectory-level drift bounds live in
  // tests/trajectory/trajectory_precision_test.cpp.)
  Workload w = melt_workload(256);
  LjParams lj;
  SoaKernel dp;
  SingleSoaKernel sp;
  SoaKernelMixed mixed;
  const ForceResult r_dp = dp.compute(w.system.positions(), w.box, lj, 1.0);
  const ForceResult r_sp = sp.compute(w.system.positions(), w.box, lj, 1.0);
  const ForceResult r_mx = mixed.compute(w.system.positions(), w.box, lj, 1.0);

  // Max |a| sets the scale for the absolute comparison (LJ forces near the
  // cutoff are tiny; relative-per-atom would be needlessly strict there).
  double scale = 0.0;
  for (const auto& a : r_dp.accelerations) {
    scale = std::max({scale, std::fabs(a.x), std::fabs(a.y), std::fabs(a.z)});
  }
  ASSERT_GT(scale, 0.0);
  double worst_sp = 0.0, worst_mx = 0.0;
  for (std::size_t i = 0; i < r_dp.accelerations.size(); ++i) {
    const auto ds = r_dp.accelerations[i] - r_sp.accelerations[i];
    const auto dm = r_dp.accelerations[i] - r_mx.accelerations[i];
    worst_sp = std::max(
        {worst_sp, std::fabs(ds.x), std::fabs(ds.y), std::fabs(ds.z)});
    worst_mx = std::max(
        {worst_mx, std::fabs(dm.x), std::fabs(dm.y), std::fabs(dm.z)});
  }
  // ~2^-24 is one float ulp; the r^-14 force amplifies coordinate rounding,
  // so allow a few hundred ulp of headroom while staying far below any
  // physically meaningful error.
  const double bound = 1e-4 * scale;
  EXPECT_LT(worst_sp, bound);
  EXPECT_LT(worst_mx, bound);
  EXPECT_NEAR(r_sp.potential_energy, r_dp.potential_energy,
              1e-4 * std::fabs(r_dp.potential_energy));
  EXPECT_NEAR(r_mx.potential_energy, r_dp.potential_energy,
              1e-4 * std::fabs(r_dp.potential_energy));
  // Same coordinates, same cutoff: the interacting-pair count may differ
  // only by pairs within float rounding of the cutoff shell.
  EXPECT_NEAR(static_cast<double>(r_sp.stats.interacting),
              static_cast<double>(r_dp.stats.interacting),
              std::max(2.0, 1e-3 * static_cast<double>(r_dp.stats.interacting)));
}

TEST(PrecisionSeam, ListKernelsAgreeWithSoaPerPrecision) {
  // The neighbour-list path must compute the same physics as the N^2 sweep
  // at every precision (dp exactly; sp/mixed to accumulation-order rounding
  // — the list walks fewer, differently-ordered j columns).
  Workload w = melt_workload(256);
  LjParams lj;
  {
    SoaKernel n2;
    NeighborListKernel list;
    const ForceResult a = n2.compute(w.system.positions(), w.box, lj, 1.0);
    const ForceResult b = list.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_EQ(a.stats.interacting, b.stats.interacting);
    EXPECT_NEAR(b.potential_energy, a.potential_energy,
                1e-12 * std::fabs(a.potential_energy));
  }
  {
    SingleSoaKernel n2;
    SingleNeighborListKernel list;
    const ForceResult a = n2.compute(w.system.positions(), w.box, lj, 1.0);
    const ForceResult b = list.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_EQ(a.stats.interacting, b.stats.interacting);
    EXPECT_NEAR(b.potential_energy, a.potential_energy,
                1e-5 * std::fabs(a.potential_energy));
  }
  {
    SoaKernelMixed n2;
    NeighborListKernelMixed list;
    const ForceResult a = n2.compute(w.system.positions(), w.box, lj, 1.0);
    const ForceResult b = list.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_EQ(a.stats.interacting, b.stats.interacting);
    EXPECT_NEAR(b.potential_energy, a.potential_energy,
                1e-5 * std::fabs(a.potential_energy));
  }
}

}  // namespace
}  // namespace emdpa::md
