// Batch journal: record grammar round-trips, replay folding, torn-tail
// tolerance, durability degradation under injected WAL EIO, and atomic
// compaction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/fault_injection.h"
#include "core/wal.h"
#include "md/batch_journal.h"

namespace emdpa::md {
namespace {

namespace fs = std::filesystem;

class BatchJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::instance().reset();
    path_ = (fs::path(::testing::TempDir()) /
             (std::string("journal_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    fs::remove(path_);
    fs::remove(path_ + ".tmp");
  }
  void TearDown() override { fault::Registry::instance().reset(); }

  JournalRecord admit(const std::string& job, int priority) {
    JournalRecord r;
    r.event = JournalEvent::kAdmit;
    r.job = job;
    r.priority = priority;
    return r;
  }
  JournalRecord slice(const std::string& job, long steps,
                      std::uint64_t slices = 1) {
    JournalRecord r;
    r.event = JournalEvent::kSlice;
    r.job = job;
    r.steps = steps;
    r.slices = slices;
    return r;
  }
  JournalRecord retry(const std::string& job, int attempt, std::uint64_t delay,
                      const std::string& detail) {
    JournalRecord r;
    r.event = JournalEvent::kRetry;
    r.job = job;
    r.attempt = attempt;
    r.delay = delay;
    r.detail = detail;
    return r;
  }
  JournalRecord done(const std::string& job, long steps) {
    JournalRecord r;
    r.event = JournalEvent::kDone;
    r.job = job;
    r.steps = steps;
    return r;
  }

  std::string path_;
};

TEST_F(BatchJournalTest, EncodeParseRoundTripsEveryEvent) {
  std::vector<JournalRecord> records;
  records.push_back(admit("replica-a", 2));
  records.push_back(slice("replica-a", 50));
  records.push_back(slice("replica-a", 100, 7));
  records.push_back(retry("replica-a", 2, 3, "numerical failure: energy drift"));
  JournalRecord quarantine;
  quarantine.event = JournalEvent::kQuarantine;
  quarantine.job = "replica-a";
  quarantine.attempt = 3;
  quarantine.detail = "retry budget exhausted";
  records.push_back(quarantine);
  records.push_back(done("replica-a", 200));
  JournalRecord fail;
  fail.event = JournalEvent::kFail;
  fail.job = "replica-a";
  fail.attempt = 1;
  fail.detail = "injected EIO";
  records.push_back(fail);
  JournalRecord interrupt;
  interrupt.event = JournalEvent::kInterrupt;
  records.push_back(interrupt);

  for (const JournalRecord& original : records) {
    JournalRecord parsed;
    ASSERT_TRUE(parse_journal_record(encode_journal_record(original), &parsed))
        << encode_journal_record(original);
    EXPECT_EQ(parsed.event, original.event);
    EXPECT_EQ(parsed.job, original.job);
    EXPECT_EQ(parsed.priority, original.priority);
    EXPECT_EQ(parsed.steps, original.steps);
    EXPECT_EQ(parsed.attempt, original.attempt);
    EXPECT_EQ(parsed.delay, original.delay);
    EXPECT_EQ(parsed.slices, original.slices);
    EXPECT_EQ(parsed.detail, original.detail);
  }
}

TEST_F(BatchJournalTest, SliceCountOnlyAppearsInCompactionSnapshots) {
  EXPECT_EQ(encode_journal_record(slice("j", 50)), "slice j steps 50");
  EXPECT_EQ(encode_journal_record(slice("j", 50, 4)), "slice j steps 50 slices 4");
  JournalRecord parsed;
  ASSERT_TRUE(parse_journal_record("slice j steps 50", &parsed));
  EXPECT_EQ(parsed.slices, 1u);
}

TEST_F(BatchJournalTest, ParseRejectsMalformedPayloads) {
  JournalRecord record;
  EXPECT_FALSE(parse_journal_record("", &record));
  EXPECT_FALSE(parse_journal_record("frobnicate x", &record));
  EXPECT_FALSE(parse_journal_record("admit j", &record));
  EXPECT_FALSE(parse_journal_record("admit j priority", &record));
  EXPECT_FALSE(parse_journal_record("slice j steps", &record));
  EXPECT_FALSE(parse_journal_record("slice j steps 5 bogus 3", &record));
  EXPECT_FALSE(parse_journal_record("retry j attempt 1", &record));
}

TEST_F(BatchJournalTest, ReplayFoldsRecordsIntoSupervisionState) {
  {
    BatchJournal journal(path_);
    journal.open_for_append();
    journal.record(admit("alpha", 2));
    journal.record(admit("beta", 0));
    journal.record(slice("alpha", 50));
    journal.record(slice("alpha", 100));
    journal.record(retry("beta", 1, 3, "transient spawn failure"));
    journal.record(done("alpha", 100));
  }
  BatchJournal journal(path_);
  const BatchJournal::Replay replay = journal.replay();
  EXPECT_EQ(replay.records, 6u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.interrupted);

  const ReplayedJob& alpha = replay.jobs.at("alpha");
  EXPECT_EQ(alpha.status, JobStatus::kCompleted);
  EXPECT_EQ(alpha.steps_done, 100);
  EXPECT_EQ(alpha.slices, 2u);
  EXPECT_FALSE(alpha.retrying);

  const ReplayedJob& beta = replay.jobs.at("beta");
  EXPECT_EQ(beta.status, JobStatus::kPending);
  EXPECT_TRUE(beta.retrying);
  EXPECT_EQ(beta.attempts, 1);
  EXPECT_EQ(beta.retry_delay, 3u);
  EXPECT_EQ(beta.detail, "transient spawn failure");
  // Recency: beta's retry (record 5) is newer than alpha's slices but older
  // than alpha's done record.
  EXPECT_EQ(beta.last_event, 5u);
  EXPECT_EQ(alpha.last_event, 6u);
}

TEST_F(BatchJournalTest, ReplayToleratesATornTail) {
  {
    BatchJournal journal(path_);
    journal.open_for_append();
    journal.record(admit("alpha", 0));
    journal.record(slice("alpha", 50));
  }
  {
    // A kill mid-append: frame bytes on disk but no terminating newline.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << wal_frame("slice alpha steps 100").substr(0, 12);
  }
  BatchJournal journal(path_);
  const BatchJournal::Replay replay = journal.replay();
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.jobs.at("alpha").steps_done, 50);
}

TEST_F(BatchJournalTest, InterruptedOnlyWhenItIsTheLastRecord) {
  JournalRecord interrupt;
  interrupt.event = JournalEvent::kInterrupt;
  {
    BatchJournal journal(path_);
    journal.open_for_append();
    journal.record(admit("alpha", 0));
    journal.record(interrupt);
  }
  EXPECT_TRUE(BatchJournal(path_).replay().interrupted);
  {
    BatchJournal journal(path_);
    journal.open_for_append();
    journal.record(slice("alpha", 50));  // the batch resumed after the drain
  }
  EXPECT_FALSE(BatchJournal(path_).replay().interrupted);
}

TEST_F(BatchJournalTest, UnparseableButCrcCleanPayloadIsSkipped) {
  {
    WalWriter writer(path_);
    writer.append(encode_journal_record(admit("alpha", 0)));
    writer.append("future-record-type alpha whatever 7");
    writer.append(encode_journal_record(slice("alpha", 50)));
  }
  const BatchJournal::Replay replay = BatchJournal(path_).replay();
  EXPECT_EQ(replay.records, 2u);  // the foreign record is not fatal
  EXPECT_EQ(replay.jobs.at("alpha").steps_done, 50);
}

TEST_F(BatchJournalTest, InjectedWalIoDegradesDurabilityInsteadOfThrowing) {
  BatchJournal journal(path_);
  journal.open_for_append();
  journal.record(admit("alpha", 0));
  ASSERT_TRUE(journal.durable());

  {
    fault::Plan plan;  // fail exactly the next append
    fault::ScopedFault fault("md.wal_io", plan);
    EXPECT_NO_THROW(journal.record(slice("alpha", 50)));
  }
  EXPECT_FALSE(journal.durable());
  EXPECT_EQ(journal.append_failures(), 1u);

  // The next successful append resumes coverage.
  journal.record(slice("alpha", 100));
  EXPECT_TRUE(journal.durable());

  // The lost record is simply absent — replay recovers everything around it.
  const BatchJournal::Replay replay = BatchJournal(path_).replay();
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.jobs.at("alpha").steps_done, 100);
  EXPECT_EQ(replay.jobs.at("alpha").slices, 1u);
}

TEST_F(BatchJournalTest, CompactionRotatesTheSegmentAtomically) {
  BatchJournal journal(path_, /*max_segment_bytes=*/128);
  journal.open_for_append();
  for (int i = 0; i < 16; ++i) {
    journal.record(slice("alpha", 10 * (i + 1)));
  }
  ASSERT_TRUE(journal.over_segment_bound());

  // The snapshot replaces the history with one state run that replays to the
  // same supervision state — cumulative slice count included.
  journal.compact({admit("alpha", 0), slice("alpha", 160, 16)});
  EXPECT_TRUE(journal.durable());
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));

  const BatchJournal::Replay replay = BatchJournal(path_).replay();
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.jobs.at("alpha").steps_done, 160);
  EXPECT_EQ(replay.jobs.at("alpha").slices, 16u);

  // The appender continues on the rotated segment.
  journal.record(done("alpha", 200));
  EXPECT_EQ(BatchJournal(path_).replay().jobs.at("alpha").status,
            JobStatus::kCompleted);
}

TEST_F(BatchJournalTest, InjectedWalIoOnRotationKeepsTheOldSegment) {
  BatchJournal journal(path_, /*max_segment_bytes=*/64);
  journal.open_for_append();
  journal.record(admit("alpha", 0));
  journal.record(slice("alpha", 50));

  {
    fault::Plan plan;
    fault::ScopedFault fault("md.wal_io", plan);
    EXPECT_NO_THROW(journal.compact({admit("alpha", 0)}));
  }
  EXPECT_FALSE(journal.durable());
  // The unrotated segment is still fully valid.
  const BatchJournal::Replay replay = BatchJournal(path_).replay();
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.jobs.at("alpha").steps_done, 50);
}

}  // namespace
}  // namespace emdpa::md
