#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/observables.h"
#include "md/thermostat.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(Thermostat, ValidatesParameters) {
  EXPECT_THROW(BerendsenThermostat(-1.0, 0.5), ContractViolation);
  EXPECT_THROW(BerendsenThermostat(1.0, 0.0), ContractViolation);
  EXPECT_THROW(BerendsenThermostat(1.0, 1.5), ContractViolation);
}

TEST(Thermostat, FullCouplingHitsTargetInOneStep) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 2.0;
  Workload w = make_lattice_workload(spec);
  BerendsenThermostat thermostat(1.0, 1.0);
  thermostat.apply(w.system);
  EXPECT_NEAR(temperature_of(w.system), 1.0, 1e-10);
}

TEST(Thermostat, PartialCouplingMovesTowardTarget) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 2.0;
  Workload w = make_lattice_workload(spec);
  BerendsenThermostat thermostat(1.0, 0.1);
  const double t0 = temperature_of(w.system);
  thermostat.apply(w.system);
  const double t1 = temperature_of(w.system);
  EXPECT_LT(t1, t0);
  EXPECT_GT(t1, 1.0);
}

TEST(Thermostat, ConvergesUnderRepeatedApplication) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 0.2;
  Workload w = make_lattice_workload(spec);
  BerendsenThermostat thermostat(1.5, 0.2);
  for (int i = 0; i < 100; ++i) thermostat.apply(w.system);
  EXPECT_NEAR(temperature_of(w.system), 1.5, 1e-6);
}

TEST(Thermostat, ZeroTemperatureSystemIsLeftAlone) {
  ParticleSystem ps(8);  // all velocities zero
  BerendsenThermostat thermostat(1.0, 0.5);
  EXPECT_DOUBLE_EQ(thermostat.apply(ps), 1.0);
  EXPECT_DOUBLE_EQ(temperature_of(ps), 0.0);
}

TEST(Thermostat, OnTargetScaleFactorIsOne) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 1.0;
  Workload w = make_lattice_workload(spec);
  BerendsenThermostat thermostat(1.0, 0.5);
  EXPECT_NEAR(thermostat.apply(w.system), 1.0, 1e-10);
}

TEST(Thermostat, PreservesMomentumDirection) {
  // Rescaling is multiplicative: zero total momentum stays zero.
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 2.0;
  Workload w = make_lattice_workload(spec);
  BerendsenThermostat thermostat(0.5, 1.0);
  thermostat.apply(w.system);
  EXPECT_NEAR(length(total_momentum_of(w.system)), 0.0, 1e-10);
}

}  // namespace
}  // namespace emdpa::md
