#include <gtest/gtest.h>

#include "core/error.h"
#include "md/particle_system.h"

namespace emdpa::md {
namespace {

TEST(ParticleSystem, DefaultIsEmpty) {
  ParticleSystem ps;
  EXPECT_TRUE(ps.empty());
  EXPECT_EQ(ps.size(), 0u);
}

TEST(ParticleSystem, SizedConstructionZeroInitialises) {
  ParticleSystem ps(5);
  EXPECT_EQ(ps.size(), 5u);
  EXPECT_EQ(ps.positions().size(), 5u);
  EXPECT_EQ(ps.velocities().size(), 5u);
  EXPECT_EQ(ps.accelerations().size(), 5u);
  for (const auto& p : ps.positions()) EXPECT_EQ(p, Vec3d{});
  EXPECT_DOUBLE_EQ(ps.mass(), 1.0);
}

TEST(ParticleSystem, MassValidation) {
  ParticleSystem ps(1);
  ps.set_mass(2.5);
  EXPECT_DOUBLE_EQ(ps.mass(), 2.5);
  EXPECT_THROW(ps.set_mass(0.0), ContractViolation);
  EXPECT_THROW(ps.set_mass(-1.0), ContractViolation);
}

TEST(ParticleSystem, StateIsMutable) {
  ParticleSystem ps(2);
  ps.positions()[1] = {1, 2, 3};
  ps.velocities()[0] = {-1, 0, 1};
  ps.accelerations()[1] = {9, 9, 9};
  EXPECT_EQ(ps.positions()[1], (Vec3d{1, 2, 3}));
  EXPECT_EQ(ps.velocities()[0], (Vec3d{-1, 0, 1}));
  EXPECT_EQ(ps.accelerations()[1], (Vec3d{9, 9, 9}));
}

TEST(ParticleSystem, CastConvertsAllState) {
  ParticleSystem ps(2);
  ps.positions()[0] = {0.5, 1.5, 2.5};
  ps.velocities()[1] = {-0.25, 0, 0.25};
  ps.set_mass(2.0);

  const ParticleSystemF f = ps.cast<float>();
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.positions()[0], (Vec3f{0.5f, 1.5f, 2.5f}));
  EXPECT_EQ(f.velocities()[1], (Vec3f{-0.25f, 0.0f, 0.25f}));
  EXPECT_FLOAT_EQ(f.mass(), 2.0f);
}

TEST(ParticleSystem, CastRoundTripExactForRepresentableValues) {
  ParticleSystem ps(1);
  ps.positions()[0] = {0.125, -4.0, 7.5};
  const ParticleSystem back = ps.cast<float>().cast<double>();
  EXPECT_EQ(back.positions()[0], ps.positions()[0]);
}

}  // namespace
}  // namespace emdpa::md
