// Shared randomized-workload recipes for the neighbour-list property
// harnesses (neighbor_property_test.cpp and shard_invariance_test.cpp run
// over the SAME 50 seeded configs, so "sharded CSR == flat CSR" is asserted
// on exactly the population the flat list is already proven against).
//
// Everything is seeded: a failure reproduces from the config index alone.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/random.h"
#include "md/workload.h"

namespace emdpa::md {

struct PropertyConfig {
  std::size_t index = 0;
  std::size_t n_atoms = 0;
  double density = 0;
  double temperature = 0;
  double cutoff = 0;
  double skin = 0;
  bool degenerate = false;  ///< box barely wider than 2*(cutoff+skin)
};

/// Deterministically expand a config index into a workload recipe.  Most
/// configs are small (fast reference comparison); every 10th is large
/// (4k–20k atoms, where the parallel binning actually has work to do);
/// every 7th shrinks the box until the all-pairs fallback engages.
inline PropertyConfig make_config(std::size_t index) {
  Rng rng(0xC0FFEEull * (index + 1) + index);
  static constexpr std::size_t kSmall[] = {32,  48,  64,   100,  128,  171, 200,
                                           256, 333, 512,  648,  777,  864, 1000,
                                           1331, 1500, 1728, 2048};
  static constexpr std::size_t kLarge[] = {4096, 8192, 20000, 5832, 6144};

  PropertyConfig config;
  config.index = index;
  config.degenerate = index % 7 == 3;
  const bool large = !config.degenerate && index % 10 == 9;
  config.n_atoms = large ? kLarge[(index / 10) % std::size(kLarge)]
                         : kSmall[rng.uniform_index(std::size(kSmall))];
  config.density = rng.uniform(0.2, 1.0);
  config.temperature = rng.uniform(0.2, 1.5);
  config.skin = rng.uniform(0.1, 0.5);

  const double edge = box_edge_for(config.n_atoms, config.density);
  if (config.degenerate) {
    // List radius at 95% of the half edge: the box fits fewer than
    // width cells per axis, so the build must take the all-pairs branch.
    config.cutoff = 0.95 * edge / 2.0 - config.skin;
  } else {
    // Keep cutoff + skin within the half edge the minimum-image convention
    // assumes; below that, draw freely.
    const double cap = 0.49 * edge - config.skin;
    config.cutoff = std::min(rng.uniform(1.8, 3.0), cap);
  }
  EXPECT_GT(config.cutoff, 0.5) << "config " << index << " has no physics";
  return config;
}

/// Lattice workload with per-atom jitter: random-looking positions with a
/// guaranteed minimum separation (jitter stays under half the lattice
/// spacing), cheap enough for 20k atoms.
inline Workload make_jittered_workload(const PropertyConfig& config) {
  WorkloadSpec spec;
  spec.n_atoms = config.n_atoms;
  spec.density = config.density;
  spec.temperature = config.temperature;
  spec.seed = 0x9E3779B9ull + config.index;
  Workload w = make_lattice_workload(spec);

  std::size_t side = 1;
  while (side * side * side < config.n_atoms) ++side;
  const double spacing = w.box.edge() / static_cast<double>(side);
  Rng rng(spec.seed ^ 0xDEADBEEFull);
  for (auto& p : w.system.positions()) {
    p.x += rng.uniform(-0.35, 0.35) * spacing;
    p.y += rng.uniform(-0.35, 0.35) * spacing;
    p.z += rng.uniform(-0.35, 0.35) * spacing;
  }
  return w;
}

}  // namespace emdpa::md
