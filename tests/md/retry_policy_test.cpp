// Retry / quarantine policy: budget accounting, deadline classification and
// the journal-replay property (restored attempt counts continue the exact
// delay sequence the dead process was drawing).
#include <gtest/gtest.h>

#include <vector>

#include "core/crc32.h"
#include "core/error.h"
#include "md/retry_policy.h"

namespace emdpa::md {
namespace {

RetryPolicy policy_with_retries(int max_retries) {
  RetryPolicy policy;
  policy.max_retries = max_retries;
  return policy;
}

TEST(RetryPolicyTest, ZeroBudgetFailsImmediately) {
  // max_retries == 0 is the pre-supervision contract: first failure is
  // final, the batch report shows a failed job, exit code 3.
  RetryState state(policy_with_retries(0), "replica-a");
  const RetryState::Verdict verdict = state.on_failure();
  EXPECT_EQ(verdict.action, FailureAction::kFail);
  EXPECT_EQ(verdict.attempts, 1);
  EXPECT_EQ(state.attempts(), 1);
}

TEST(RetryPolicyTest, RetriesUpToBudgetThenQuarantines) {
  RetryState state(policy_with_retries(2), "replica-a");

  const RetryState::Verdict first = state.on_failure();
  EXPECT_EQ(first.action, FailureAction::kRetry);
  EXPECT_EQ(first.attempts, 1);
  EXPECT_GE(first.delay_rounds, 1u);

  const RetryState::Verdict second = state.on_failure();
  EXPECT_EQ(second.action, FailureAction::kRetry);
  EXPECT_EQ(second.attempts, 2);
  EXPECT_GE(second.delay_rounds, 1u);

  const RetryState::Verdict third = state.on_failure();
  EXPECT_EQ(third.action, FailureAction::kQuarantine);
  EXPECT_EQ(third.attempts, 3);
}

TEST(RetryPolicyTest, DeadlineQuarantinesRegardlessOfRemainingBudget) {
  RetryState state(policy_with_retries(5), "replica-a");
  const RetryState::Verdict verdict = state.on_failure(/*deadline=*/true);
  EXPECT_EQ(verdict.action, FailureAction::kQuarantine);
  EXPECT_EQ(verdict.attempts, 1);
}

TEST(RetryPolicyTest, DelaysAreDeterministicPerJobName) {
  RetryState a1(policy_with_retries(4), "replica-a");
  RetryState a2(policy_with_retries(4), "replica-a");
  RetryState b(policy_with_retries(4), "replica-b");

  std::vector<std::uint64_t> delays_a1, delays_a2, delays_b;
  for (int i = 0; i < 4; ++i) {
    delays_a1.push_back(a1.on_failure().delay_rounds);
    delays_a2.push_back(a2.on_failure().delay_rounds);
    delays_b.push_back(b.on_failure().delay_rounds);
  }
  EXPECT_EQ(delays_a1, delays_a2);
  // Different jobs jitter on independent streams; the first delay is the
  // base for everyone, so decorrelation shows up in the later draws.  (Equal
  // sequences are astronomically unlikely but not impossible; keep this a
  // soft property over several draws.)
  EXPECT_TRUE(delays_a1 != delays_b || delays_a1.size() < 2)
      << "distinct jobs drew identical jitter sequences";
}

TEST(RetryPolicyTest, RestoredAttemptsContinueTheDelaySequence) {
  // The dead process drew delays d1, d2 before the kill and journalled
  // attempts = 2.  The restarted process must draw d3, d4 next — not d1
  // again — or replayed batches schedule retries differently.
  std::vector<std::uint64_t> reference;
  {
    RetryState fresh(policy_with_retries(5), "replica-a");
    for (int i = 0; i < 4; ++i) {
      reference.push_back(fresh.on_failure().delay_rounds);
    }
  }

  RetryState restored(policy_with_retries(5), "replica-a");
  restored.restore_attempts(2);
  EXPECT_EQ(restored.attempts(), 2);

  const RetryState::Verdict third = restored.on_failure();
  EXPECT_EQ(third.action, FailureAction::kRetry);
  EXPECT_EQ(third.attempts, 3);
  EXPECT_EQ(third.delay_rounds, reference[2]);
  EXPECT_EQ(restored.on_failure().delay_rounds, reference[3]);
}

TEST(RetryPolicyTest, BackoffStreamIsTheCrcOfTheJobName) {
  // std::hash is implementation-defined; the journal contract pins the
  // stream id to CRC-32 so delays replay across platforms.
  EXPECT_EQ(backoff_stream_for("replica-a"),
            static_cast<std::uint64_t>(crc32("replica-a")));
  EXPECT_NE(backoff_stream_for("replica-a"), backoff_stream_for("replica-b"));
}

TEST(RetryPolicyTest, RejectsNegativeBudgets) {
  RetryPolicy policy;
  policy.max_retries = -1;
  EXPECT_THROW(RetryState(policy, "replica-a"), ContractViolation);
  RetryState state(policy_with_retries(1), "replica-a");
  EXPECT_THROW(state.restore_attempts(-3), ContractViolation);
}

}  // namespace
}  // namespace emdpa::md
