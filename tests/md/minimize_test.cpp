#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/minimize.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(Minimize, ValidatesOptions) {
  ParticleSystem ps(2);
  PeriodicBox box(10);
  LjParams lj;
  ReferenceKernel kernel;
  MinimizeOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(minimize_energy(ps, box, lj, kernel, bad), ContractViolation);
  bad = {};
  bad.force_tolerance = 0;
  EXPECT_THROW(minimize_energy(ps, box, lj, kernel, bad), ContractViolation);
}

TEST(Minimize, TwoAtomsRelaxToPotentialMinimum) {
  ParticleSystem ps(2);
  ps.positions() = {{5.0, 5.0, 5.0}, {6.0, 5.0, 5.0}};  // r = 1.0, repulsive
  PeriodicBox box(20);
  LjParams lj;
  ReferenceKernel kernel;

  const auto result = minimize_energy(ps, box, lj, kernel);
  EXPECT_TRUE(result.converged);
  const double r = length(box.min_image(ps.positions()[0] - ps.positions()[1]));
  EXPECT_NEAR(r, std::pow(2.0, 1.0 / 6.0), 1e-3);
  EXPECT_NEAR(result.final_energy, -1.0, 1e-5);
}

TEST(Minimize, EnergyNeverIncreases) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.density = 0.6;
  spec.seed = 5;
  Workload w = make_random_gas_workload(spec, 0.85);
  LjParams lj;
  ReferenceKernel kernel;

  MinimizeOptions options;
  options.max_iterations = 200;
  const auto result = minimize_energy(w.system, w.box, lj, kernel, options);
  EXPECT_LE(result.final_energy, result.initial_energy);
  EXPECT_GT(result.iterations, 0);
}

TEST(Minimize, RemovesOverlapsFromRandomPacking) {
  // A dense random gas with mild overlaps has huge positive energy; after
  // minimisation the system is bound (negative PE).
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.density = 0.7;
  spec.seed = 9;
  Workload w = make_random_gas_workload(spec, 0.75);
  LjParams lj;
  ReferenceKernel kernel;

  MinimizeOptions options;
  options.max_iterations = 2000;
  options.force_tolerance = 1e-3;
  const auto result = minimize_energy(w.system, w.box, lj, kernel, options);
  EXPECT_LT(result.final_energy, 0.0);
  EXPECT_LT(result.final_energy, result.initial_energy);
}

TEST(Minimize, AlreadyRelaxedSystemConvergesImmediately) {
  // The perfect cubic lattice is a stationary point: zero force, zero
  // iterations.
  WorkloadSpec spec;
  spec.n_atoms = 125;
  spec.temperature = 0.0;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  ReferenceKernel kernel;
  MinimizeOptions options;
  options.force_tolerance = 1e-6;
  const auto result = minimize_energy(w.system, w.box, lj, kernel, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(Minimize, VelocitiesUntouched) {
  ParticleSystem ps(2);
  ps.positions() = {{5, 5, 5}, {6.2, 5, 5}};
  ps.velocities() = {{1, 2, 3}, {-1, -2, -3}};
  PeriodicBox box(20);
  LjParams lj;
  ReferenceKernel kernel;
  minimize_energy(ps, box, lj, kernel);
  EXPECT_EQ(ps.velocities()[0], (Vec3d{1, 2, 3}));
  EXPECT_EQ(ps.velocities()[1], (Vec3d{-1, -2, -3}));
}

}  // namespace
}  // namespace emdpa::md
