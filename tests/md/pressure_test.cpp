#include <gtest/gtest.h>

#include <cmath>

#include "md/cell_list_kernel.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/verlet_list_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(Pressure, IdealGasLawWithZeroVirial) {
  // Non-interacting atoms: P = rho * T exactly (with the 3N convention).
  WorkloadSpec spec;
  spec.n_atoms = 256;
  spec.density = 0.5;
  spec.temperature = 1.3;
  Workload w = make_lattice_workload(spec);
  const double volume = w.box.volume();
  const double p = pressure_of(w.system, volume, 0.0);
  EXPECT_NEAR(p, 0.5 * 1.3, 1e-9);
}

TEST(Pressure, TwoRepulsiveAtomsHavePositiveVirial) {
  LjParams lj;
  ReferenceKernel kernel;
  std::vector<Vec3d> pos = {{5, 5, 5}, {6.0, 5, 5}};  // r = 1 < minimum
  const auto r = kernel.compute(pos, PeriodicBox(20), lj, 1.0);
  EXPECT_GT(r.virial, 0.0);
  // W = r . f for the single pair.
  const double f = lj.pair_force_over_r(1.0) * 1.0;
  EXPECT_NEAR(r.virial, f * 1.0, 1e-10);
}

TEST(Pressure, TwoAttractiveAtomsHaveNegativeVirial) {
  LjParams lj;
  ReferenceKernel kernel;
  std::vector<Vec3d> pos = {{5, 5, 5}, {6.5, 5, 5}};  // r = 1.5 > minimum
  const auto r = kernel.compute(pos, PeriodicBox(20), lj, 1.0);
  EXPECT_LT(r.virial, 0.0);
}

TEST(Pressure, AllKernelsAgreeOnVirial) {
  WorkloadSpec spec;
  spec.n_atoms = 256;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  ReferenceKernel ref;
  CellListKernel cells;
  VerletListKernel verlet;
  const double a = ref.compute(w.system.positions(), w.box, lj, 1.0).virial;
  const double b = cells.compute(w.system.positions(), w.box, lj, 1.0).virial;
  const double c = verlet.compute(w.system.positions(), w.box, lj, 1.0).virial;
  EXPECT_NEAR(a, b, 1e-8 * std::fabs(a));
  EXPECT_NEAR(a, c, 1e-8 * std::fabs(a));
}

TEST(Pressure, DenseLjLiquidPressureIsPhysical) {
  // At rho* = 0.8442 near T* = 1.44 the LJ fluid has a moderate positive
  // pressure (a few epsilon/sigma^3) — a loose physical sanity band.
  WorkloadSpec spec;
  spec.n_atoms = 512;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  ReferenceKernel kernel;
  const auto r = kernel.compute(w.system.positions(), w.box, lj, 1.0);
  const double p = pressure_of(w.system, w.box.volume(), r.virial);
  EXPECT_GT(p, -2.0);
  EXPECT_LT(p, 15.0);
}

TEST(Pressure, CompressionRaisesPressure) {
  LjParams lj;
  ReferenceKernel kernel;
  auto pressure_at_density = [&](double rho) {
    WorkloadSpec spec;
    spec.n_atoms = 343;
    spec.density = rho;
    spec.temperature = 1.5;
    Workload w = make_lattice_workload(spec);
    const auto r = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    return pressure_of(w.system, w.box.volume(), r.virial);
  };
  EXPECT_GT(pressure_at_density(1.0), pressure_at_density(0.7));
}

}  // namespace
}  // namespace emdpa::md
