#include <gtest/gtest.h>

#include "md/units.h"

namespace emdpa::md {
namespace {

TEST(ArgonUnits, TemperatureConversion) {
  // T* = 1 is epsilon/k_B = 119.8 K.
  EXPECT_DOUBLE_EQ(ArgonUnits::temperature_to_kelvin(1.0), 119.8);
  // Argon melts at 83.8 K ~ T* = 0.7.
  EXPECT_NEAR(ArgonUnits::temperature_to_kelvin(0.7), 83.86, 0.01);
}

TEST(ArgonUnits, LengthConversion) {
  EXPECT_DOUBLE_EQ(ArgonUnits::length_to_angstrom(1.0), 3.405);
  EXPECT_DOUBLE_EQ(ArgonUnits::length_to_angstrom(2.0), 6.81);
}

TEST(ArgonUnits, TimeConversion) {
  // One reduced time unit for argon is ~2.156 ps; a dt of 0.005 is ~10.8 fs,
  // the canonical MD step size.
  EXPECT_DOUBLE_EQ(ArgonUnits::time_to_ps(1.0), 2.156);
  EXPECT_NEAR(ArgonUnits::time_to_ps(0.005) * 1000.0, 10.78, 0.01);
}

TEST(ArgonUnits, ConversionsAreConstexpr) {
  static_assert(ArgonUnits::temperature_to_kelvin(1.0) == 119.8);
  static_assert(ArgonUnits::length_to_angstrom(1.0) == 3.405);
  SUCCEED();
}

}  // namespace
}  // namespace emdpa::md
