// CheckpointManager: atomic commits, generation rotation, CRC verification
// and corruption fallback.  Everything here operates on real files under
// the test temp dir — the crash-safety claims are about the filesystem.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.h"
#include "core/fault_injection.h"
#include "md/checkpoint_manager.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

namespace fs = std::filesystem;

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::instance().reset();
    path_ = fs::path(::testing::TempDir()) /
            (std::string("ckpt_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove(path_);
    fs::remove(path_ + ".prev");
    fs::remove(path_ + ".tmp");
  }
  void TearDown() override { fault::Registry::instance().reset(); }

  ParticleSystem system_at_step(long step) {
    WorkloadSpec spec;
    spec.n_atoms = 27;
    Workload w = make_lattice_workload(spec);
    // Make generations distinguishable beyond the step counter.
    w.system.positions()[0].x = static_cast<double>(step);
    return std::move(w.system);
  }

  std::string read_all(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void write_all(const std::string& file, const std::string& content) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::string path_;
};

TEST_F(CheckpointManagerTest, SaveCommitsAndCleansUpTempFile) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(5), PeriodicBox(4.0), 5, -1.25);

  EXPECT_TRUE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(manager.temp_path()));
  EXPECT_EQ(manager.saves(), 1u);

  const Checkpoint cp = CheckpointManager::load_file(path_);
  EXPECT_EQ(cp.step, 5);
  EXPECT_TRUE(cp.has_potential);
  EXPECT_EQ(cp.potential, -1.25);
}

TEST_F(CheckpointManagerTest, SecondSaveRotatesPreviousGeneration) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);
  manager.save(system_at_step(20), PeriodicBox(4.0), 20);

  EXPECT_EQ(CheckpointManager::load_file(path_).step, 20);
  EXPECT_EQ(CheckpointManager::load_file(manager.previous_path()).step, 10);
  EXPECT_EQ(manager.saves(), 2u);
}

TEST_F(CheckpointManagerTest, LoadPrefersLatestGeneration) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);
  manager.save(system_at_step(20), PeriodicBox(4.0), 20);

  const CheckpointLoad loaded = manager.load();
  EXPECT_EQ(loaded.checkpoint.step, 20);
  EXPECT_FALSE(loaded.used_fallback);
  EXPECT_EQ(loaded.source_path, path_);
}

TEST_F(CheckpointManagerTest, TruncatedLatestFallsBackToPrevious) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);
  manager.save(system_at_step(20), PeriodicBox(4.0), 20);

  // Simulate a crash that truncated the latest generation mid-write.
  std::string latest = read_all(path_);
  latest.resize(latest.size() / 2);
  write_all(path_, latest);

  const CheckpointLoad loaded = manager.load();
  EXPECT_TRUE(loaded.used_fallback);
  EXPECT_EQ(loaded.checkpoint.step, 10);
  EXPECT_EQ(loaded.source_path, manager.previous_path());
}

TEST_F(CheckpointManagerTest, FlippedPayloadByteFailsTheCrc) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);

  std::string content = read_all(path_);
  // Flip one bit in the middle of an atom line: the line still parses as a
  // number, so only the CRC can catch it.
  content[content.size() / 2] ^= 0x01;
  write_all(path_, content);

  try {
    CheckpointManager::load_file(path_);
    FAIL() << "a flipped payload byte must fail verification";
  } catch (const RuntimeFailure& e) {
    EXPECT_NE(std::string(e.what()).find("crc mismatch"), std::string::npos);
  }
}

TEST_F(CheckpointManagerTest, FlippedCrcFooterByteIsRejected) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);

  std::string content = read_all(path_);
  // Corrupt the stored CRC itself (last hex digit, before the newline).
  char& digit = content[content.size() - 2];
  digit = digit == '0' ? '1' : '0';
  write_all(path_, content);

  EXPECT_THROW(CheckpointManager::load_file(path_), RuntimeFailure);
}

TEST_F(CheckpointManagerTest, MissingBothGenerationsReportsBothPaths) {
  CheckpointManager manager(path_);
  try {
    manager.load();
    FAIL() << "nothing on disk: load must fail";
  } catch (const RuntimeFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos);
    EXPECT_NE(what.find(manager.previous_path()), std::string::npos);
  }
}

TEST_F(CheckpointManagerTest, CorruptLatestWithNoPreviousFails) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);
  write_all(path_, "emdpa-checkpoint 2\ngarbage\n");
  EXPECT_THROW(manager.load(), RuntimeFailure);
}

TEST_F(CheckpointManagerTest, InjectedEioLeavesCommittedGenerationsIntact) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);

  {
    fault::Plan plan;  // fail the next save attempt
    fault::ScopedFault fault("md.checkpoint_io", plan);
    EXPECT_THROW(manager.save(system_at_step(20), PeriodicBox(4.0), 20),
                 RuntimeFailure);
  }
  // The failed attempt left no temp debris and damaged nothing.
  EXPECT_FALSE(fs::exists(manager.temp_path()));
  EXPECT_EQ(CheckpointManager::load_file(path_).step, 10);
  EXPECT_EQ(manager.saves(), 1u);

  // The retry (next interval, fault cleared) commits and rotates normally.
  manager.save(system_at_step(20), PeriodicBox(4.0), 20);
  EXPECT_EQ(CheckpointManager::load_file(path_).step, 20);
  EXPECT_EQ(CheckpointManager::load_file(manager.previous_path()).step, 10);
}

TEST_F(CheckpointManagerTest, InjectedDirectoryFsyncEioFailsTheSaveLoudly) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);

  // The directory fsync is the LAST durability step: by the time it fails,
  // the rename already committed.  The save must still report failure (the
  // caller cannot count on the commit surviving power loss), while the
  // renamed generation stays fully loadable for this process.
  {
    fault::Plan plan;  // fail the next directory fsync
    fault::ScopedFault fault("md.dir_fsync", plan);
    try {
      manager.save(system_at_step(20), PeriodicBox(4.0), 20);
      FAIL() << "a failed directory fsync must fail the save";
    } catch (const RuntimeFailure& e) {
      EXPECT_NE(std::string(e.what()).find("fsync"), std::string::npos);
    }
  }
  EXPECT_EQ(manager.saves(), 1u);  // the failed attempt does not count
  EXPECT_EQ(CheckpointManager::load_file(path_).step, 20);
  EXPECT_EQ(CheckpointManager::load_file(manager.previous_path()).step, 10);

  // The retry commits and rotates normally once the fault clears.
  manager.save(system_at_step(30), PeriodicBox(4.0), 30);
  EXPECT_EQ(manager.saves(), 2u);
  EXPECT_EQ(CheckpointManager::load_file(path_).step, 30);
}

TEST_F(CheckpointManagerTest, StalePreviousGenerationStateIsPreserved) {
  CheckpointManager manager(path_);
  manager.save(system_at_step(10), PeriodicBox(4.0), 10);
  manager.save(system_at_step(20), PeriodicBox(4.0), 20);
  fs::remove(path_);  // crash window: latest gone, previous must serve

  const CheckpointLoad loaded = manager.load();
  EXPECT_TRUE(loaded.used_fallback);
  EXPECT_EQ(loaded.checkpoint.step, 10);
  EXPECT_EQ(loaded.checkpoint.system.positions()[0].x, 10.0);
}

}  // namespace
}  // namespace emdpa::md
