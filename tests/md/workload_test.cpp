#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/observables.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(BoxEdge, MatchesDensity) {
  // N / edge^3 == density.
  const double edge = box_edge_for(1000, 0.8);
  EXPECT_NEAR(1000.0 / (edge * edge * edge), 0.8, 1e-12);
}

TEST(BoxEdge, Validation) {
  EXPECT_THROW(box_edge_for(0, 1.0), ContractViolation);
  EXPECT_THROW(box_edge_for(10, 0.0), ContractViolation);
}

TEST(LatticeWorkload, ExactAtomCount) {
  for (std::size_t n : {1u, 7u, 256u, 500u}) {
    WorkloadSpec spec;
    spec.n_atoms = n;
    EXPECT_EQ(make_lattice_workload(spec).system.size(), n);
  }
}

TEST(LatticeWorkload, AllAtomsInsideBox) {
  WorkloadSpec spec;
  spec.n_atoms = 256;
  const Workload w = make_lattice_workload(spec);
  for (const auto& p : w.system.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, w.box.edge());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, w.box.edge());
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, w.box.edge());
  }
}

TEST(LatticeWorkload, NoOverlappingAtoms) {
  WorkloadSpec spec;
  spec.n_atoms = 216;
  const Workload w = make_lattice_workload(spec);
  const double min_expected = 0.5;  // lattice spacing ~ 1.06 at rho 0.8442
  for (std::size_t i = 0; i < w.system.size(); ++i) {
    for (std::size_t j = i + 1; j < w.system.size(); ++j) {
      const Vec3d dr = w.box.min_image(w.system.positions()[i] -
                                       w.system.positions()[j]);
      EXPECT_GT(length(dr), min_expected);
    }
  }
}

TEST(LatticeWorkload, DeterministicForSameSpec) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  const Workload a = make_lattice_workload(spec);
  const Workload b = make_lattice_workload(spec);
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    EXPECT_EQ(a.system.positions()[i], b.system.positions()[i]);
    EXPECT_EQ(a.system.velocities()[i], b.system.velocities()[i]);
  }
}

TEST(LatticeWorkload, DifferentSeedsGiveDifferentVelocities) {
  WorkloadSpec a, b;
  a.n_atoms = b.n_atoms = 64;
  b.seed = a.seed + 1;
  const Workload wa = make_lattice_workload(a);
  const Workload wb = make_lattice_workload(b);
  EXPECT_NE(wa.system.velocities()[0], wb.system.velocities()[0]);
  // Positions are lattice-determined, not seeded.
  EXPECT_EQ(wa.system.positions()[0], wb.system.positions()[0]);
}

TEST(LatticeWorkload, ZeroTotalMomentum) {
  WorkloadSpec spec;
  spec.n_atoms = 128;
  const Workload w = make_lattice_workload(spec);
  const Vec3d p = total_momentum_of(w.system);
  EXPECT_NEAR(p.x, 0.0, 1e-10);
  EXPECT_NEAR(p.y, 0.0, 1e-10);
  EXPECT_NEAR(p.z, 0.0, 1e-10);
}

TEST(LatticeWorkload, ExactInitialTemperature) {
  WorkloadSpec spec;
  spec.n_atoms = 128;
  spec.temperature = 1.44;
  const Workload w = make_lattice_workload(spec);
  EXPECT_NEAR(temperature_of(w.system), 1.44, 1e-10);
}

class LatticeTemperatureSweep
    : public ::testing::TestWithParam<double> {};

TEST_P(LatticeTemperatureSweep, TemperatureIsExactAcrossTargets) {
  WorkloadSpec spec;
  spec.n_atoms = 100;
  spec.temperature = GetParam();
  const Workload w = make_lattice_workload(spec);
  EXPECT_NEAR(temperature_of(w.system), GetParam(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Targets, LatticeTemperatureSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 1.44, 2.0, 5.0));

TEST(LatticeWorkload, ZeroTemperatureMeansZeroVelocities) {
  WorkloadSpec spec;
  spec.n_atoms = 27;
  spec.temperature = 0.0;
  const Workload w = make_lattice_workload(spec);
  for (const auto& v : w.system.velocities()) EXPECT_EQ(v, Vec3d{});
}

TEST(RandomGasWorkload, RespectsMinimumSeparation) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.density = 0.4;
  const double min_sep = 0.7;
  const Workload w = make_random_gas_workload(spec, min_sep);
  for (std::size_t i = 0; i < w.system.size(); ++i) {
    for (std::size_t j = i + 1; j < w.system.size(); ++j) {
      const Vec3d dr = w.box.min_image(w.system.positions()[i] -
                                       w.system.positions()[j]);
      EXPECT_GE(length(dr), min_sep);
    }
  }
}

TEST(RandomGasWorkload, ImpossiblePackingThrows) {
  WorkloadSpec spec;
  spec.n_atoms = 128;
  spec.density = 1.0;  // edge ~ 5; min_sep 3 cannot fit 128 atoms
  EXPECT_THROW(make_random_gas_workload(spec, 3.0), RuntimeFailure);
}

TEST(AssignThermalVelocities, SingleAtomGetsNoVelocity) {
  ParticleSystem ps(1);
  assign_thermal_velocities(ps, 2.0, 1);
  EXPECT_EQ(ps.velocities()[0], Vec3d{});
}

}  // namespace
}  // namespace emdpa::md
