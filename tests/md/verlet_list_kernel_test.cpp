#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/integrator.h"
#include "md/reference_kernel.h"
#include "md/verlet_list_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(VerletListKernel, RejectsNegativeSkin) {
  EXPECT_THROW(VerletListKernel kernel(-0.1), ContractViolation);
}

class VerletListAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VerletListAgreement, MatchesReferenceKernel) {
  WorkloadSpec spec;
  spec.n_atoms = GetParam();
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  ReferenceKernel ref;
  VerletListKernel verlet;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = verlet.compute(w.system.positions(), w.box, lj, 1.0);
  // PairStats speak the same unordered-pair language across kernels.
  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(a.potential_energy, b.potential_energy,
              1e-9 * std::fabs(a.potential_energy));
  for (std::size_t i = 0; i < a.accelerations.size(); ++i) {
    EXPECT_NEAR(a.accelerations[i].x, b.accelerations[i].x, 1e-9);
    EXPECT_NEAR(a.accelerations[i].y, b.accelerations[i].y, 1e-9);
    EXPECT_NEAR(a.accelerations[i].z, b.accelerations[i].z, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AtomCounts, VerletListAgreement,
                         ::testing::Values(64, 125, 256, 512));

TEST(VerletListKernel, ReusesListAcrossCloseConfigurations) {
  WorkloadSpec spec;
  spec.n_atoms = 256;
  spec.temperature = 0.5;
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  VerletListKernel kernel(0.4);
  ReferenceKernel ref;
  VelocityVerlet vv(0.002);
  // Drive the system with the reference kernel, querying the Verlet-list
  // kernel each step and checking it stays correct while reusing its list.
  vv.prime(w.system, w.box, lj, ref);
  for (int s = 0; s < 20; ++s) {
    vv.step(w.system, w.box, lj, ref);
    const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
    const auto b = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_NEAR(a.potential_energy, b.potential_energy,
                1e-9 * std::fabs(a.potential_energy))
        << "step " << s;
  }
  EXPECT_EQ(kernel.evaluations(), 20u);
  // "Updated every few simulation time steps": far fewer rebuilds than
  // evaluations.
  EXPECT_LT(kernel.rebuilds(), 8u);
  EXPECT_GE(kernel.rebuilds(), 1u);
}

TEST(VerletListKernel, ZeroSkinRebuildsEveryMove) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 0.5;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  VerletListKernel kernel(0.0);
  kernel.compute(w.system.positions(), w.box, lj, 1.0);
  w.system.positions()[0].x += 0.01;
  kernel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 2u);
}

TEST(VerletListKernel, CandidatesBoundedByListNotNSquared) {
  WorkloadSpec spec;
  spec.n_atoms = 2048;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  VerletListKernel kernel;
  const auto r = kernel.compute(w.system.positions(), w.box, lj, 1.0);
  // List candidates ~ N * (neighbours within cutoff+skin) << N^2.
  EXPECT_LT(r.stats.candidates, 2048ull * 200ull);
  EXPECT_GT(r.stats.interacting, 0u);
}

TEST(VerletListKernel, CutoffChangeForcesRebuild) {
  // Regression: the kernel used to reuse a list built for a smaller cutoff,
  // silently dropping every pair between the old and new radius.  Two atoms
  // at r = 2.0: invisible at cutoff 1.5, interacting at cutoff 2.5.
  std::vector<Vec3d> pos = {{5.0, 5.0, 5.0}, {7.0, 5.0, 5.0}};
  PeriodicBox box(20.0);
  VerletListKernel kernel(0.3);

  LjParams narrow;
  narrow.cutoff = 1.5;
  const auto before = kernel.compute(pos, box, narrow, 1.0);
  EXPECT_EQ(before.stats.interacting, 0u);
  EXPECT_EQ(before.potential_energy, 0.0);

  LjParams wide;
  wide.cutoff = 2.5;
  const auto after = kernel.compute(pos, box, wide, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 2u);
  EXPECT_EQ(after.stats.interacting, 1u);
  EXPECT_NEAR(after.potential_energy, wide.pair_energy(4.0), 1e-12);
  EXPECT_NE(after.accelerations[0].x, 0.0);

  // Shrinking back must also rebuild: the wide list holds pairs the narrow
  // cutoff-plus-skin radius should never have admitted as candidates.
  const auto again = kernel.compute(pos, box, narrow, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 3u);
  EXPECT_EQ(again.stats.candidates, 0u);
}

TEST(VerletListKernel, AtomCountChangeForcesRebuild) {
  LjParams lj;
  VerletListKernel kernel;
  WorkloadSpec small_spec;
  small_spec.n_atoms = 64;
  Workload small = make_lattice_workload(small_spec);
  kernel.compute(small.system.positions(), small.box, lj, 1.0);

  WorkloadSpec big_spec;
  big_spec.n_atoms = 125;
  Workload big = make_lattice_workload(big_spec);
  const auto r = kernel.compute(big.system.positions(), big.box, lj, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 2u);
  EXPECT_EQ(r.accelerations.size(), 125u);
}

TEST(VerletListKernel, SinglePrecisionInstantiation) {
  WorkloadSpec spec;
  spec.n_atoms = 125;
  Workload w = make_lattice_workload(spec);
  std::vector<Vec3f> pos;
  for (const auto& p : w.system.positions()) pos.push_back(vec_cast<float>(p));
  VerletListKernelF kernel;
  const auto r = kernel.compute(pos, PeriodicBoxF(static_cast<float>(w.box.edge())),
                                md::LjParams{}.cast<float>(), 1.0f);
  EXPECT_LT(r.potential_energy, 0.0f);
}

}  // namespace
}  // namespace emdpa::md
