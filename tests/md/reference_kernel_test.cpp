#include <gtest/gtest.h>

#include <cmath>

#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

/// Two isolated atoms at separation r along x in a large box.
struct PairSetup {
  std::vector<Vec3d> positions;
  PeriodicBox box{20.0};
};

PairSetup make_pair(double r) {
  PairSetup s;
  s.positions = {{5.0, 5.0, 5.0}, {5.0 + r, 5.0, 5.0}};
  return s;
}

TEST(ReferenceKernel, TwoAtomForceMatchesAnalyticLJ) {
  LjParams lj;
  ReferenceKernel kernel;
  const double r = 1.2;
  const PairSetup s = make_pair(r);
  const auto result = kernel.compute(s.positions, s.box, lj, 1.0);

  const double expect_fx = lj.pair_force_over_r(r * r) * (-r);  // on atom 0
  EXPECT_NEAR(result.accelerations[0].x, expect_fx, 1e-12);
  EXPECT_NEAR(result.accelerations[1].x, -expect_fx, 1e-12);
  EXPECT_NEAR(result.accelerations[0].y, 0.0, 1e-15);
  EXPECT_NEAR(result.potential_energy, lj.pair_energy(r * r), 1e-12);
}

TEST(ReferenceKernel, PairStatsCountUnorderedPairs) {
  LjParams lj;
  ReferenceKernel kernel;
  const auto result = kernel.compute(make_pair(1.2).positions, PeriodicBox(20), lj, 1.0);
  EXPECT_EQ(result.stats.candidates, 1u);   // one unordered {i, j} pair
  EXPECT_EQ(result.stats.interacting, 1u);
}

TEST(ReferenceKernel, BeyondCutoffNoInteraction) {
  LjParams lj;
  ReferenceKernel kernel;
  const auto result = kernel.compute(make_pair(2.6).positions, PeriodicBox(20), lj, 1.0);
  EXPECT_EQ(result.stats.interacting, 0u);
  EXPECT_EQ(result.potential_energy, 0.0);
  EXPECT_EQ(result.accelerations[0], Vec3d{});
}

TEST(ReferenceKernel, ExactlyAtCutoffExcluded) {
  LjParams lj;  // cutoff 2.5, test uses strict <
  ReferenceKernel kernel;
  const auto result = kernel.compute(make_pair(2.5).positions, PeriodicBox(20), lj, 1.0);
  EXPECT_EQ(result.stats.interacting, 0u);
}

TEST(ReferenceKernel, InteractsAcrossPeriodicBoundary) {
  LjParams lj;
  ReferenceKernel kernel;
  // Atoms at x=0.2 and x=9.4 in a box of 10: true separation 0.8 via the
  // boundary.
  std::vector<Vec3d> pos = {{0.2, 5, 5}, {9.4, 5, 5}};
  const auto result = kernel.compute(pos, PeriodicBox(10), lj, 1.0);
  EXPECT_EQ(result.stats.interacting, 1u);
  EXPECT_NEAR(result.potential_energy, lj.pair_energy(0.8 * 0.8), 1e-12);
  // Atom 0 is pushed in +x? dr = p0 - p1 = -9.2 -> min image +0.8; force on
  // atom 0 along +dr for repulsive pair (r < sigma): +x.
  EXPECT_GT(result.accelerations[0].x, 0.0);
}

TEST(ReferenceKernel, AccelerationInverselyProportionalToMass) {
  LjParams lj;
  ReferenceKernel kernel;
  const PairSetup s = make_pair(1.1);
  const auto r1 = kernel.compute(s.positions, s.box, lj, 1.0);
  const auto r2 = kernel.compute(s.positions, s.box, lj, 2.0);
  EXPECT_NEAR(r2.accelerations[0].x, 0.5 * r1.accelerations[0].x, 1e-12);
  // Potential energy is mass-independent.
  EXPECT_DOUBLE_EQ(r1.potential_energy, r2.potential_energy);
}

/// Property over random fluids: Newton's third law -> total force zero.
class ReferenceKernelProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Workload make_fluid() {
    WorkloadSpec spec;
    spec.n_atoms = 64;
    spec.density = 0.6;
    spec.seed = GetParam();
    return make_random_gas_workload(spec, 0.8);
  }
};

TEST_P(ReferenceKernelProperty, NetForceIsZero) {
  LjParams lj;
  ReferenceKernel kernel;
  Workload w = make_fluid();
  const auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
  Vec3d net{};
  for (const auto& a : result.accelerations) net += a;
  EXPECT_NEAR(net.x, 0.0, 1e-9);
  EXPECT_NEAR(net.y, 0.0, 1e-9);
  EXPECT_NEAR(net.z, 0.0, 1e-9);
}

TEST_P(ReferenceKernelProperty, AllMinImageStrategiesGiveSamePhysics) {
  LjParams lj;
  Workload w = make_fluid();
  for (auto& p : w.system.positions()) p = w.box.wrap(p);

  ReferenceKernel round(MinImageStrategy::kRound);
  const auto base = round.compute(w.system.positions(), w.box, lj, 1.0);

  for (auto strategy : {MinImageStrategy::kSearch27, MinImageStrategy::kBranchy,
                        MinImageStrategy::kCopysign}) {
    ReferenceKernel other(strategy);
    const auto result = other.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_NEAR(result.potential_energy, base.potential_energy, 1e-10)
        << to_string(strategy);
    EXPECT_EQ(result.stats.interacting, base.stats.interacting);
    for (std::size_t i = 0; i < base.accelerations.size(); ++i) {
      EXPECT_NEAR(result.accelerations[i].x, base.accelerations[i].x, 1e-9);
      EXPECT_NEAR(result.accelerations[i].y, base.accelerations[i].y, 1e-9);
      EXPECT_NEAR(result.accelerations[i].z, base.accelerations[i].z, 1e-9);
    }
  }
}

TEST_P(ReferenceKernelProperty, CandidateCountIsUnorderedPairCount) {
  LjParams lj;
  ReferenceKernel kernel;
  Workload w = make_fluid();
  const auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(result.stats.candidates, 64u * 63u / 2u);
}

TEST_P(ReferenceKernelProperty, SinglePrecisionTracksDouble) {
  LjParams lj;
  Workload w = make_fluid();
  for (auto& p : w.system.positions()) p = w.box.wrap(p);

  ReferenceKernel dk;
  const auto dr = dk.compute(w.system.positions(), w.box, lj, 1.0);

  ReferenceKernelF fk;
  std::vector<Vec3f> fpos;
  for (const auto& p : w.system.positions()) fpos.push_back(vec_cast<float>(p));
  const auto fr = fk.compute(fpos, PeriodicBoxF(static_cast<float>(w.box.edge())),
                             lj.cast<float>(), 1.0f);

  EXPECT_NEAR(fr.potential_energy, dr.potential_energy,
              2e-4 * std::fabs(dr.potential_energy) + 1e-3);
  for (std::size_t i = 0; i < dr.accelerations.size(); ++i) {
    const double scale = std::fabs(dr.accelerations[i].x) + 1.0;
    EXPECT_NEAR(fr.accelerations[i].x, dr.accelerations[i].x, 2e-3 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceKernelProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(ReferenceKernel, NameIncludesStrategy) {
  EXPECT_EQ(ReferenceKernel(MinImageStrategy::kSearch27).name(),
            "reference-n2[search27]");
  EXPECT_EQ(ReferenceKernel(MinImageStrategy::kRound).name(),
            "reference-n2[round]");
}

}  // namespace
}  // namespace emdpa::md
