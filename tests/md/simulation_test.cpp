#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/error.h"
#include "md/observables.h"
#include "md/simulation.h"

namespace emdpa::md {
namespace {

Simulation::Options small_options() {
  Simulation::Options options;
  options.workload.n_atoms = 125;
  options.dt = 0.004;
  return options;
}

TEST(Simulation, ConstructsPrimedState) {
  Simulation sim(small_options());
  EXPECT_EQ(sim.system().size(), 125u);
  EXPECT_EQ(sim.current_step(), 0);
  EXPECT_LT(sim.last_energies().potential, 0.0);  // bound liquid
}

TEST(Simulation, StepAdvancesCounterAndEnergies) {
  Simulation sim(small_options());
  const auto e = sim.step();
  EXPECT_EQ(sim.current_step(), 1);
  EXPECT_GT(e.kinetic, 0.0);
  EXPECT_EQ(e.total(), sim.last_energies().total());
}

TEST(Simulation, RunInvokesObserverEveryStep) {
  Simulation sim(small_options());
  int calls = 0;
  long last_step = -1;
  sim.run(5, [&](long step, const StepEnergies&) {
    ++calls;
    last_step = step;
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(last_step, 5);
}

TEST(Simulation, NegativeRunRejected) {
  Simulation sim(small_options());
  EXPECT_THROW(sim.run(-1), ContractViolation);
}

TEST(Simulation, CellListOptionMatchesBruteForce) {
  auto options = small_options();
  Simulation brute(options);
  options.use_cell_list = true;
  Simulation cells(options);
  brute.run(5);
  cells.run(5);
  EXPECT_NEAR(brute.last_energies().potential, cells.last_energies().potential,
              1e-9 * std::fabs(brute.last_energies().potential));
}

TEST(Simulation, ThermostatPullsTemperatureToTarget) {
  auto options = small_options();
  options.workload.temperature = 2.0;
  Simulation sim(options);
  sim.set_thermostat(BerendsenThermostat(0.5, 0.5));
  sim.run(60);
  EXPECT_NEAR(temperature_of(sim.system()), 0.5, 0.15);
}

TEST(Simulation, ClearThermostatRestoresNve) {
  Simulation sim(small_options());
  sim.set_thermostat(BerendsenThermostat(0.5, 1.0));
  sim.run(5);
  sim.clear_thermostat();
  const double e_before = sim.last_energies().total();
  sim.run(10);
  // NVE: drift stays small (vs the thermostat, which would keep draining).
  EXPECT_NEAR(sim.last_energies().total(), e_before,
              0.05 * std::fabs(e_before));
}

TEST(Simulation, BondsContributeEnergy) {
  Simulation sim(small_options());
  const double pe_before = sim.last_energies().potential;
  // A stretched bond between two far-apart atoms adds positive PE.
  BondTopology bonds;
  bonds.add_bond({0, 124, 10.0, 0.5});
  sim.set_bonds(bonds);
  EXPECT_GT(sim.last_energies().potential, pe_before);
}

TEST(Simulation, CheckpointResumeContinuesBitIdentically) {
  Simulation sim(small_options());
  sim.run(7);

  std::stringstream checkpoint;
  sim.save(checkpoint);
  Simulation resumed = Simulation::resume(checkpoint, small_options());
  EXPECT_EQ(resumed.current_step(), 7);

  sim.run(5);
  resumed.run(5);
  for (std::size_t i = 0; i < sim.system().size(); ++i) {
    EXPECT_EQ(sim.system().positions()[i], resumed.system().positions()[i]);
    EXPECT_EQ(sim.system().velocities()[i], resumed.system().velocities()[i]);
  }
}

TEST(Simulation, DeterministicForSameOptions) {
  Simulation a(small_options());
  Simulation b(small_options());
  a.run(10);
  b.run(10);
  for (std::size_t i = 0; i < a.system().size(); ++i) {
    EXPECT_EQ(a.system().positions()[i], b.system().positions()[i]);
  }
}


TEST(Simulation, MinimizeUsesFullForceField) {
  Simulation sim(small_options());
  // Attach a strongly stretched bond; minimisation must relieve it, which a
  // pure-LJ minimiser could not.
  BondTopology bonds;
  bonds.add_bond({0, 1, 200.0, 0.5});
  sim.set_bonds(bonds);
  const double e0 = sim.last_energies().potential;
  MinimizeOptions options;
  options.max_iterations = 100;
  options.force_tolerance = 0.5;
  const auto r = sim.minimize(options);
  EXPECT_LT(r.final_energy, e0);
  // The integrator was re-primed: stepping works immediately.
  EXPECT_NO_THROW(sim.step());
}


TEST(Simulation, AnglesContributeEnergy) {
  Simulation sim(small_options());
  const double pe_before = sim.last_energies().potential;
  // Three nearby atoms forced toward a straight line from a bent geometry.
  AngleTopology angles;
  angles.add_angle({0, 1, 5, 50.0, 3.14159265358979});
  sim.set_angles(angles);
  EXPECT_GT(sim.last_energies().potential, pe_before);
}

TEST(Simulation, LangevinThermostatControlsTemperature) {
  auto options = small_options();
  options.workload.temperature = 2.5;
  Simulation sim(options);
  sim.set_thermostat(LangevinThermostat(0.8, 5.0, 17));
  sim.run(150);
  EXPECT_NEAR(temperature_of(sim.system()), 0.8, 0.3);
}

TEST(Simulation, SettingOneThermostatClearsTheOther) {
  Simulation sim(small_options());
  sim.set_thermostat(BerendsenThermostat(0.1, 1.0));
  sim.set_thermostat(LangevinThermostat(2.0, 5.0, 3));
  // If Berendsen (target 0.1, instant) were still active the system would
  // freeze; under Langevin at 2.0 it stays hot.
  sim.run(100);
  EXPECT_GT(temperature_of(sim.system()), 1.0);
}

}  // namespace
}  // namespace emdpa::md
