// JobScheduler behaviour: completion, per-job fault isolation, backpressure
// eviction, drain-and-resume, manifest validation, and the supervision layer
// — retry/backoff, quarantine verdicts, deadline budgets and journal-backed
// crash recovery.  The bitwise standalone-equivalence property lives in the
// trajectory suite (trajectory_batch_test.cpp); these tests cover the
// scheduling semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/fault_injection.h"
#include "md/job_scheduler.h"

namespace emdpa::md {
namespace {

namespace fs = std::filesystem;

JobSpec small_job(const std::string& name, int priority = 0, int steps = 30,
                  std::uint64_t seed = 12345) {
  JobSpec job;
  job.name = name;
  job.priority = priority;
  job.config.workload.n_atoms = 64;
  job.config.steps = steps;
  job.config.workload.seed = seed;
  return job;
}

/// A deterministically-doomed job: a huge time step under an armed drift
/// watchdog raises NumericalFailure on the first health check, regardless
/// of how the batch interleaves around it.
JobSpec poisoned_job(const std::string& name, int priority = 0) {
  JobSpec job = small_job(name, priority);
  job.config.dt = 0.5;
  job.config.drift_tolerance = 1e-3;
  return job;
}

class JobSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::instance().reset();
    dir_ = (fs::path(::testing::TempDir()) /
            ("scheduler_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fault::Registry::instance().reset();
    fs::remove_all(dir_);
  }

  SchedulerOptions options(int slice = 10) {
    SchedulerOptions o;
    o.slice_steps = slice;
    o.checkpoint_dir = dir_;
    return o;
  }

  std::string dir_;
};

TEST_F(JobSchedulerTest, RunsEveryJobToCompletion) {
  JobScheduler scheduler({small_job("a", 0, 25), small_job("b", 0, 14)},
                         options(10));
  const BatchResult batch = scheduler.run();

  ASSERT_EQ(batch.jobs.size(), 2u);
  EXPECT_FALSE(batch.interrupted);
  EXPECT_EQ(batch.count(JobStatus::kCompleted), 2u);
  // 25 steps at slice 10 -> 10+10+5; 14 -> 10+4.  Every slice checkpoints.
  EXPECT_EQ(batch.jobs[0].steps_done, 25);
  EXPECT_EQ(batch.jobs[0].slices, 3u);
  EXPECT_EQ(batch.jobs[0].checkpoint_saves, 3u);
  EXPECT_EQ(batch.jobs[1].steps_done, 14);
  EXPECT_EQ(batch.jobs[1].slices, 2u);
  EXPECT_EQ(batch.jobs[1].final_state.size(), 64u);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "a.ckpt"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "a.done"));
}

TEST_F(JobSchedulerTest, FaultInOneJobIsIsolated) {
  JobScheduler scheduler(
      {small_job("ok1"), poisoned_job("doomed"), small_job("ok2")},
      options(10));
  const BatchResult batch = scheduler.run();

  EXPECT_EQ(batch.count(JobStatus::kCompleted), 2u);
  EXPECT_EQ(batch.count(JobStatus::kFailed), 1u);
  const JobResult& doomed = batch.jobs[1];
  EXPECT_EQ(doomed.name, "doomed");
  EXPECT_EQ(doomed.status, JobStatus::kFailed);
  EXPECT_FALSE(doomed.error.empty());
  // The healthy jobs finished their full step budget despite the failure.
  EXPECT_EQ(batch.jobs[0].steps_done, 30);
  EXPECT_EQ(batch.jobs[2].steps_done, 30);
}

TEST_F(JobSchedulerTest, PriorityOrdersFirstSlices) {
  // With max_in_flight large enough, the first slice of the high-priority
  // job must run before any slice of the low-priority one.  Observable via
  // wall ordering is flaky; instead give the high-priority job exactly one
  // slice of work and check it completes even if we stop right after the
  // first slice.
  int slices_granted = 0;
  SchedulerOptions o = options(10);
  o.stop_requested = [&] { return slices_granted++ >= 1; };
  JobScheduler scheduler({small_job("low", 1, 10), small_job("high", 5, 10)},
                         o);
  const BatchResult batch = scheduler.run();

  EXPECT_TRUE(batch.interrupted);
  EXPECT_EQ(batch.jobs[1].name, "high");
  EXPECT_EQ(batch.jobs[1].status, JobStatus::kCompleted);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kInterrupted);
  EXPECT_EQ(batch.jobs[0].steps_done, 0);
}

TEST_F(JobSchedulerTest, BackpressureBoundsResidency) {
  // max_in_flight=1 forces an eviction-and-resume round-trip on every
  // alternation between the two jobs; completion with full step counts
  // proves eviction loses no state.
  SchedulerOptions o = options(10);
  o.max_in_flight = 1;
  JobScheduler scheduler({small_job("a", 0, 30), small_job("b", 0, 30)}, o);
  const BatchResult batch = scheduler.run();

  EXPECT_EQ(batch.count(JobStatus::kCompleted), 2u);
  EXPECT_EQ(batch.jobs[0].steps_done, 30);
  EXPECT_EQ(batch.jobs[1].steps_done, 30);
}

TEST_F(JobSchedulerTest, DrainAndResumeCompletesTheBatch) {
  const std::vector<JobSpec> manifest = {small_job("a", 0, 40),
                                         small_job("b", 0, 40)};
  // First batch: stop after 3 slices — both jobs mid-flight.
  int slices = 0;
  SchedulerOptions o = options(10);
  o.stop_requested = [&] { return slices++ >= 3; };
  const BatchResult first = JobScheduler(manifest, o).run();
  ASSERT_TRUE(first.interrupted);
  ASSERT_EQ(first.count(JobStatus::kInterrupted), 2u);
  ASSERT_LT(first.jobs[0].steps_done + first.jobs[1].steps_done, 80);

  // Second batch over the same directory resumes from the suspend
  // checkpoints and finishes the remaining steps.
  const BatchResult second = JobScheduler(manifest, options(10)).run();
  EXPECT_FALSE(second.interrupted);
  EXPECT_EQ(second.count(JobStatus::kCompleted), 2u);
  EXPECT_EQ(second.jobs[0].steps_done, 40);
  EXPECT_EQ(second.jobs[1].steps_done, 40);
  EXPECT_TRUE(second.jobs[0].resumed);
  EXPECT_TRUE(second.jobs[1].resumed);
}

TEST_F(JobSchedulerTest, CompletedJobsAreNotRerun) {
  const std::vector<JobSpec> manifest = {small_job("a", 0, 20),
                                         poisoned_job("bad")};
  const BatchResult first = JobScheduler(manifest, options(10)).run();
  ASSERT_EQ(first.count(JobStatus::kCompleted), 1u);
  ASSERT_EQ(first.count(JobStatus::kFailed), 1u);

  // Rerun: the completion markers keep both verdicts — no job executes a
  // slice, the failed job stays failed (its error text survives the marker).
  const BatchResult second = JobScheduler(manifest, options(10)).run();
  EXPECT_EQ(second.count(JobStatus::kCompleted), 1u);
  EXPECT_EQ(second.count(JobStatus::kFailed), 1u);
  EXPECT_EQ(second.jobs[0].slices, 0u);
  EXPECT_EQ(second.jobs[1].slices, 0u);
  EXPECT_EQ(second.jobs[0].final_energies.kinetic,
            first.jobs[0].final_energies.kinetic);
  EXPECT_EQ(second.jobs[0].final_energies.potential,
            first.jobs[0].final_energies.potential);
  EXPECT_FALSE(second.jobs[1].error.empty());
}

TEST_F(JobSchedulerTest, RejectsBadManifests) {
  EXPECT_THROW(JobScheduler({}, options()), ContractViolation);
  EXPECT_THROW(
      JobScheduler({small_job("dup"), small_job("dup")}, options()),
      RuntimeFailure);
  EXPECT_THROW(JobScheduler({small_job("bad/name")}, options()),
               RuntimeFailure);
  JobSpec no_steps = small_job("nosteps");
  no_steps.config.steps = 0;
  EXPECT_THROW(JobScheduler({no_steps}, options()), ContractViolation);

  SchedulerOptions no_dir = options();
  no_dir.checkpoint_dir.clear();
  EXPECT_THROW(JobScheduler({small_job("a")}, no_dir), ContractViolation);
}

// ---------------------------------------------------------------------------
// Supervision layer: retry/backoff, quarantine, deadlines, journal recovery.

TEST_F(JobSchedulerTest, TransientSpawnFaultIsRetriedAndRecovers) {
  SchedulerOptions o = options(10);
  o.retry.max_retries = 3;
  fault::Plan plan;  // the first spawn attempt fails, the retry succeeds
  fault::ScopedFault fault("md.job_spawn", plan);

  JobScheduler scheduler({small_job("a", 0, 20)}, o);
  const BatchResult batch = scheduler.run();

  const JobResult& job = batch.jobs[0];
  EXPECT_EQ(job.status, JobStatus::kCompleted);
  EXPECT_EQ(job.steps_done, 20);
  EXPECT_EQ(job.attempts, 1);      // one failure consumed one retry
  EXPECT_TRUE(job.error.empty());  // a job that recovered is healthy
}

TEST_F(JobSchedulerTest, ExhaustedRetryBudgetQuarantinesTheJobOnly) {
  SchedulerOptions o = options(10);
  o.retry.max_retries = 2;
  JobScheduler scheduler({poisoned_job("doomed"), small_job("ok", 0, 20)}, o);
  const BatchResult batch = scheduler.run();

  EXPECT_EQ(batch.count(JobStatus::kQuarantined), 1u);
  EXPECT_EQ(batch.count(JobStatus::kCompleted), 1u);
  const JobResult& doomed = batch.jobs[0];
  EXPECT_EQ(doomed.status, JobStatus::kQuarantined);
  EXPECT_EQ(doomed.attempts, 3);  // max_retries + 1 attempts total
  EXPECT_FALSE(doomed.error.empty());
  // Quarantine is a terminal verdict: it has a marker like any finished job.
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "doomed.done"));
  EXPECT_EQ(batch.jobs[1].steps_done, 20);
}

TEST_F(JobSchedulerTest, JournalRestoresRetryCountersAcrossRestart) {
  JobSpec doomed = poisoned_job("doomed");
  doomed.max_retries = 2;  // per-job override of the batch-wide default (0)
  const std::vector<JobSpec> manifest = {doomed, small_job("ok", 0, 40)};

  // First process: interrupted after the poisoned job consumed one retry.
  int calls = 0;
  SchedulerOptions o = options(10);
  o.stop_requested = [&] { return ++calls > 2; };
  const BatchResult first = JobScheduler(manifest, o).run();
  ASSERT_TRUE(first.interrupted);
  ASSERT_EQ(first.jobs[0].attempts, 1);

  // Second process: the journal replays attempts=1, so the budget picks up
  // where the dead process left it — two more failures reach quarantine at
  // exactly max_retries + 1 total attempts, not 1 + (max_retries + 1).
  const BatchResult second = JobScheduler(manifest, options(10)).run();
  EXPECT_EQ(second.jobs[0].status, JobStatus::kQuarantined);
  EXPECT_EQ(second.jobs[0].attempts, 3);
  EXPECT_EQ(second.jobs[1].status, JobStatus::kCompleted);
  EXPECT_EQ(second.jobs[1].steps_done, 40);
}

TEST_F(JobSchedulerTest, SliceBudgetIsMeteredAcrossProcesses) {
  JobSpec metered = small_job("metered", 0, 100);
  metered.slice_budget = 3;

  // First process grants two slices, then drains.
  int calls = 0;
  SchedulerOptions o = options(10);
  o.stop_requested = [&] { return ++calls > 2; };
  const BatchResult first = JobScheduler({metered}, o).run();
  ASSERT_TRUE(first.interrupted);
  ASSERT_EQ(first.jobs[0].steps_done, 20);

  // The journal carries the cumulative slice count: the second process may
  // grant exactly one more slice before the budget gate quarantines.
  const BatchResult second = JobScheduler({metered}, options(10)).run();
  EXPECT_EQ(second.jobs[0].status, JobStatus::kQuarantined);
  EXPECT_EQ(second.jobs[0].steps_done, 30);
  EXPECT_NE(second.jobs[0].error.find("slice budget"), std::string::npos);
}

TEST_F(JobSchedulerTest, WallDeadlineQuarantinesWithoutRetryBudget) {
  JobSpec slow = small_job("slow", 0, 1000);
  slow.deadline_seconds = 1e-9;  // any real slice overruns this
  SchedulerOptions o = options(10);
  o.retry.max_retries = 5;  // deadline must NOT consume the retry budget
  const BatchResult batch = JobScheduler({slow}, o).run();

  const JobResult& job = batch.jobs[0];
  EXPECT_EQ(job.status, JobStatus::kQuarantined);
  // The first slice runs (no wall time spent yet); the gate trips before
  // the second.
  EXPECT_EQ(job.steps_done, 10);
  EXPECT_NE(job.error.find("wall-clock budget"), std::string::npos);
}

TEST_F(JobSchedulerTest, LatchedInterruptDuringReplayDuplicatesNoWork) {
  const std::vector<JobSpec> manifest = {small_job("a", 0, 40)};
  int calls = 0;
  SchedulerOptions o = options(10);
  o.stop_requested = [&] { return ++calls > 2; };
  const BatchResult first = JobScheduler(manifest, o).run();
  ASSERT_TRUE(first.interrupted);
  ASSERT_EQ(first.jobs[0].steps_done, 20);

  // SIGTERM already latched when the resume starts (delivered during journal
  // replay): the batch drains cleanly before granting any slice.
  SchedulerOptions latched = options(10);
  latched.stop_requested = [] { return true; };
  const BatchResult second = JobScheduler(manifest, latched).run();
  EXPECT_TRUE(second.interrupted);
  EXPECT_EQ(second.jobs[0].status, JobStatus::kInterrupted);
  EXPECT_EQ(second.jobs[0].slices, 0u);

  // The clean third run finishes exactly the two remaining slices: the
  // latched drain neither lost nor duplicated job work.
  const BatchResult third = JobScheduler(manifest, options(10)).run();
  EXPECT_EQ(third.jobs[0].status, JobStatus::kCompleted);
  EXPECT_EQ(third.jobs[0].steps_done, 40);
  EXPECT_EQ(third.jobs[0].slices, 2u);
}

TEST_F(JobSchedulerTest, DoneJournalRecordWithoutMarkerReadmitsForNoOpSlice) {
  const std::vector<JobSpec> manifest = {small_job("a", 0, 20)};
  const BatchResult first = JobScheduler(manifest, options(10)).run();
  ASSERT_EQ(first.count(JobStatus::kCompleted), 1u);

  // Kill window: the journal recorded `done` but the marker never landed.
  fs::remove(fs::path(dir_) / "a.done");

  // The job re-enters the queue and completes in one no-op slice off its
  // final checkpoint — same step count, same energies, marker re-derived.
  const BatchResult second = JobScheduler(manifest, options(10)).run();
  EXPECT_EQ(second.jobs[0].status, JobStatus::kCompleted);
  EXPECT_EQ(second.jobs[0].steps_done, 20);
  EXPECT_EQ(second.jobs[0].slices, 1u);
  EXPECT_EQ(second.jobs[0].final_energies.kinetic,
            first.jobs[0].final_energies.kinetic);
  EXPECT_EQ(second.jobs[0].final_energies.potential,
            first.jobs[0].final_energies.potential);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "a.done"));
  // The no-op slice must NOT re-save: the on-disk generation is already
  // final, and re-rotating it would re-open the rename kill window on a
  // completed job's checkpoint.
  EXPECT_EQ(second.jobs[0].checkpoint_saves, 0u);
}

TEST_F(JobSchedulerTest, QuarantineVerdictSurvivesAMissingMarker) {
  JobSpec doomed = poisoned_job("doomed");
  doomed.max_retries = 1;
  const BatchResult first = JobScheduler({doomed}, options(10)).run();
  ASSERT_EQ(first.jobs[0].status, JobStatus::kQuarantined);
  ASSERT_EQ(first.jobs[0].attempts, 2);

  // Kill window: quarantine journalled, marker lost.  The journal verdict
  // holds — the job is NOT re-run, and the marker is restored.
  fs::remove(fs::path(dir_) / "doomed.done");
  const BatchResult second = JobScheduler({doomed}, options(10)).run();
  EXPECT_EQ(second.jobs[0].status, JobStatus::kQuarantined);
  EXPECT_EQ(second.jobs[0].slices, 0u);
  EXPECT_EQ(second.jobs[0].attempts, 2);
  EXPECT_FALSE(second.jobs[0].error.empty());
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "doomed.done"));
}

}  // namespace
}  // namespace emdpa::md
