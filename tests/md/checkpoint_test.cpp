#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/crc32.h"
#include "core/error.h"
#include "md/checkpoint.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

/// v2+ files end in a CRC-32 footer over everything before it; hand-written
/// fixtures need a valid one to reach the parser under test.
std::string with_crc_footer(const std::string& body) {
  char footer[24];
  std::snprintf(footer, sizeof(footer), "crc %08x\n", crc32(body));
  return body + footer;
}

ParticleSystem sample_system() {
  WorkloadSpec spec;
  spec.n_atoms = 27;
  Workload w = make_lattice_workload(spec);
  w.system.accelerations()[3] = {0.1, -0.2, 0.3};
  return std::move(w.system);
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const ParticleSystem original = sample_system();
  PeriodicBox box(5.5);

  std::stringstream stream;
  save_checkpoint(stream, original, box, 42);
  const Checkpoint cp = load_checkpoint(stream);

  EXPECT_EQ(cp.step, 42);
  EXPECT_DOUBLE_EQ(cp.box_edge, 5.5);
  ASSERT_EQ(cp.system.size(), original.size());
  EXPECT_EQ(cp.system.mass(), original.mass());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(cp.system.positions()[i], original.positions()[i]);
    EXPECT_EQ(cp.system.velocities()[i], original.velocities()[i]);
    EXPECT_EQ(cp.system.accelerations()[i], original.accelerations()[i]);
  }
}

TEST(Checkpoint, PreservesExtremeValues) {
  ParticleSystem ps(1);
  ps.positions()[0] = {1e-300, -1e300, 0.1};  // 0.1 is not exact in binary
  ps.velocities()[0] = {-0.0, 3.14159265358979323846, 1e-17};
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(1.0), 0);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.system.positions()[0], ps.positions()[0]);
  EXPECT_EQ(cp.system.velocities()[0], ps.velocities()[0]);
  // Even the sign of zero survives the hex-float round trip.
  EXPECT_TRUE(std::signbit(cp.system.velocities()[0].x));
}

TEST(Checkpoint, DenormalsRoundTripExactly) {
  ParticleSystem ps(1);
  // 5e-324 is the smallest positive subnormal double; the others sit just
  // below the normal range.  %a / stod must carry them through unchanged.
  ps.positions()[0] = {5e-324, -5e-324, 2.2250738585072009e-308};
  ps.velocities()[0] = {-2.2250738585072014e-308, 0.0, 1e-310};
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(1.0), 0);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.system.positions()[0], ps.positions()[0]);
  EXPECT_EQ(cp.system.velocities()[0], ps.velocities()[0]);
}

TEST(Checkpoint, NegativeZeroSignSurvivesEveryField) {
  ParticleSystem ps(1);
  ps.positions()[0] = {-0.0, 0.0, -0.0};
  ps.accelerations()[0] = {0.0, -0.0, 0.0};
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(1.0), 0);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_TRUE(std::signbit(cp.system.positions()[0].x));
  EXPECT_FALSE(std::signbit(cp.system.positions()[0].y));
  EXPECT_TRUE(std::signbit(cp.system.positions()[0].z));
  EXPECT_TRUE(std::signbit(cp.system.accelerations()[0].y));
}

TEST(Checkpoint, RejectsInfinityInState) {
  // stod parses "inf" happily; the loader must not — a non-finite state can
  // only come from corruption or a blown-up run.
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass 0x1p+0 box 0x1p+0 step 0\n"
      "inf 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsNanInState) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass 0x1p+0 box 0x1p+0 step 0\n"
      "0 0 0 nan 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsNonFiniteMass) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass inf box 0x1p+0 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsGarbledStateLineKeyword) {
  // "atoms" misspelt: the state line must be rejected before any parsing.
  std::stringstream stream(
      "emdpa-checkpoint 1\natomz 1 mass 0x1p+0 box 0x1p+0 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsTruncatedStateLine) {
  std::stringstream stream("emdpa-checkpoint 1\natoms 1 mass 0x1p+0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsTrailingGarbageInNumber) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass 1.0x box 0x1p+0 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::stringstream stream("not-a-checkpoint 1\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsWrongVersion) {
  std::stringstream stream("emdpa-checkpoint 99\natoms 0 mass 1 box 1 step 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsTruncatedAtoms) {
  const ParticleSystem original = sample_system();
  std::stringstream stream;
  save_checkpoint(stream, original, PeriodicBox(5.5), 0);
  std::string text = stream.str();
  text.resize(text.size() * 2 / 3);  // cut mid-atom
  std::stringstream cut(text);
  EXPECT_THROW(load_checkpoint(cut), RuntimeFailure);
}

TEST(Checkpoint, RejectsMalformedNumbers) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass banana box 1 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsMissingHeader) {
  std::stringstream stream("");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, EmptySystemRoundTrips) {
  ParticleSystem ps(1);
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(2.0), 7);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.system.size(), 1u);
  EXPECT_EQ(cp.step, 7);
}

// --- v3: optional run-configuration and Langevin RNG sections ------------

TEST(Checkpoint, RawSaveRecordsNoConfigOrRng) {
  // The raw state overload has no configuration to record; the optional
  // sections stay absent so old callers keep their exact behaviour.
  std::stringstream stream;
  save_checkpoint(stream, sample_system(), PeriodicBox(5.5), 1);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_FALSE(cp.config.has_value());
  EXPECT_FALSE(cp.langevin_rng.has_value());
}

TEST(Checkpoint, ConfigSectionRoundTrips) {
  Checkpoint original;
  original.system = sample_system();
  original.box_edge = 5.5;
  original.step = 99;
  original.potential = -123.456;
  original.config = CheckpointConfig{"neighbor-list", "mixed", "avx2"};

  std::stringstream stream;
  save_checkpoint(stream, original);
  const Checkpoint cp = load_checkpoint(stream);

  ASSERT_TRUE(cp.config.has_value());
  EXPECT_EQ(cp.config->kernel, "neighbor-list");
  EXPECT_EQ(cp.config->precision, "mixed");
  EXPECT_EQ(cp.config->simd, "avx2");
  EXPECT_EQ(cp.step, 99);
  EXPECT_DOUBLE_EQ(cp.potential, -123.456);
}

TEST(Checkpoint, LangevinRngSectionRoundTripsBitExact) {
  Checkpoint original;
  original.system = sample_system();
  original.box_edge = 5.5;
  original.step = 3;
  Rng::State rng;
  rng.s = {0xdeadbeefcafebabeull, 0x0123456789abcdefull,
           0xffffffffffffffffull, 0x1ull};
  rng.cached_gaussian = -0.73205080756887729;  // arbitrary, not exact binary
  rng.has_cached_gaussian = true;
  original.langevin_rng = rng;

  std::stringstream stream;
  save_checkpoint(stream, original);
  const Checkpoint cp = load_checkpoint(stream);

  ASSERT_TRUE(cp.langevin_rng.has_value());
  EXPECT_EQ(cp.langevin_rng->s, rng.s);
  EXPECT_EQ(cp.langevin_rng->cached_gaussian, rng.cached_gaussian);
  EXPECT_TRUE(cp.langevin_rng->has_cached_gaussian);
}

TEST(Checkpoint, V2WithoutOptionalSectionsStillLoads) {
  // A pre-v3 checkpoint (no config, no rng lines) must parse exactly as
  // before: both optionals absent, state intact.
  std::stringstream stream(with_crc_footer(
      "emdpa-checkpoint 2\n"
      "atoms 1 mass 0x1p+0 box 0x1p+2 step 5 pe -0x1.8p+1\n"
      "0 0 0 0 0 0 0 0 0\n"));
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.step, 5);
  EXPECT_TRUE(cp.has_potential);
  EXPECT_FALSE(cp.config.has_value());
  EXPECT_FALSE(cp.langevin_rng.has_value());
}

TEST(Checkpoint, RejectsTruncatedConfigLine) {
  std::stringstream stream(with_crc_footer(
      "emdpa-checkpoint 3\n"
      "atoms 1 mass 0x1p+0 box 0x1p+2 step 0 pe 0x0p+0\n"
      "config kernel reference precision\n"
      "0 0 0 0 0 0 0 0 0\n"));
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsMalformedRngLine) {
  std::stringstream stream(with_crc_footer(
      "emdpa-checkpoint 3\n"
      "atoms 1 mass 0x1p+0 box 0x1p+2 step 0 pe 0x0p+0\n"
      "rng langevin zzzz 0 0 0 0x0p+0 0\n"
      "0 0 0 0 0 0 0 0 0\n"));
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, ListrefSectionRoundTripsBitExact) {
  Checkpoint original;
  original.system = sample_system();
  original.box_edge = 5.5;
  original.step = 7;
  std::vector<Vec3d> ref(original.system.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = {0.1 * static_cast<double>(i), -0.0, 1e-310};  // awkward values
  }
  original.list_ref = ref;
  original.list_ref_cutoff = 2.8;

  std::stringstream stream;
  save_checkpoint(stream, original);
  const Checkpoint cp = load_checkpoint(stream);

  ASSERT_TRUE(cp.list_ref.has_value());
  ASSERT_EQ(cp.list_ref->size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ((*cp.list_ref)[i], ref[i]) << "atom " << i;
  }
  EXPECT_TRUE(std::signbit((*cp.list_ref)[1].y));
  EXPECT_DOUBLE_EQ(cp.list_ref_cutoff, 2.8);
}

TEST(Checkpoint, ListrefRejectsAtomCountMismatch) {
  std::stringstream stream(with_crc_footer(
      "emdpa-checkpoint 4\n"
      "atoms 1 mass 0x1p+0 box 0x1p+2 step 0 pe 0x0p+0\n"
      "listref 2 cutoff 0x1p+1\n"
      "0 0 0\n"
      "0 0 0\n"
      "0 0 0 0 0 0 0 0 0\n"));
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, ListrefRejectsNonPositiveCutoff) {
  std::stringstream stream(with_crc_footer(
      "emdpa-checkpoint 4\n"
      "atoms 1 mass 0x1p+0 box 0x1p+2 step 0 pe 0x0p+0\n"
      "listref 1 cutoff -0x1p+1\n"
      "0 0 0\n"
      "0 0 0 0 0 0 0 0 0\n"));
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, V3FilesDoNotAdmitListref) {
  // The section is a v4 addition; a v3 file carrying it is malformed.
  std::stringstream stream(with_crc_footer(
      "emdpa-checkpoint 3\n"
      "atoms 1 mass 0x1p+0 box 0x1p+2 step 0 pe 0x0p+0\n"
      "listref 1 cutoff 0x1p+1\n"
      "0 0 0\n"
      "0 0 0 0 0 0 0 0 0\n"));
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

}  // namespace
}  // namespace emdpa::md
