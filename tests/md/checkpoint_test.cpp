#include <gtest/gtest.h>

#include <sstream>

#include "core/error.h"
#include "md/checkpoint.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

ParticleSystem sample_system() {
  WorkloadSpec spec;
  spec.n_atoms = 27;
  Workload w = make_lattice_workload(spec);
  w.system.accelerations()[3] = {0.1, -0.2, 0.3};
  return std::move(w.system);
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const ParticleSystem original = sample_system();
  PeriodicBox box(5.5);

  std::stringstream stream;
  save_checkpoint(stream, original, box, 42);
  const Checkpoint cp = load_checkpoint(stream);

  EXPECT_EQ(cp.step, 42);
  EXPECT_DOUBLE_EQ(cp.box_edge, 5.5);
  ASSERT_EQ(cp.system.size(), original.size());
  EXPECT_EQ(cp.system.mass(), original.mass());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(cp.system.positions()[i], original.positions()[i]);
    EXPECT_EQ(cp.system.velocities()[i], original.velocities()[i]);
    EXPECT_EQ(cp.system.accelerations()[i], original.accelerations()[i]);
  }
}

TEST(Checkpoint, PreservesExtremeValues) {
  ParticleSystem ps(1);
  ps.positions()[0] = {1e-300, -1e300, 0.1};  // 0.1 is not exact in binary
  ps.velocities()[0] = {-0.0, 3.14159265358979323846, 1e-17};
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(1.0), 0);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.system.positions()[0], ps.positions()[0]);
  EXPECT_EQ(cp.system.velocities()[0], ps.velocities()[0]);
  // Even the sign of zero survives the hex-float round trip.
  EXPECT_TRUE(std::signbit(cp.system.velocities()[0].x));
}

TEST(Checkpoint, DenormalsRoundTripExactly) {
  ParticleSystem ps(1);
  // 5e-324 is the smallest positive subnormal double; the others sit just
  // below the normal range.  %a / stod must carry them through unchanged.
  ps.positions()[0] = {5e-324, -5e-324, 2.2250738585072009e-308};
  ps.velocities()[0] = {-2.2250738585072014e-308, 0.0, 1e-310};
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(1.0), 0);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.system.positions()[0], ps.positions()[0]);
  EXPECT_EQ(cp.system.velocities()[0], ps.velocities()[0]);
}

TEST(Checkpoint, NegativeZeroSignSurvivesEveryField) {
  ParticleSystem ps(1);
  ps.positions()[0] = {-0.0, 0.0, -0.0};
  ps.accelerations()[0] = {0.0, -0.0, 0.0};
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(1.0), 0);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_TRUE(std::signbit(cp.system.positions()[0].x));
  EXPECT_FALSE(std::signbit(cp.system.positions()[0].y));
  EXPECT_TRUE(std::signbit(cp.system.positions()[0].z));
  EXPECT_TRUE(std::signbit(cp.system.accelerations()[0].y));
}

TEST(Checkpoint, RejectsInfinityInState) {
  // stod parses "inf" happily; the loader must not — a non-finite state can
  // only come from corruption or a blown-up run.
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass 0x1p+0 box 0x1p+0 step 0\n"
      "inf 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsNanInState) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass 0x1p+0 box 0x1p+0 step 0\n"
      "0 0 0 nan 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsNonFiniteMass) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass inf box 0x1p+0 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsGarbledStateLineKeyword) {
  // "atoms" misspelt: the state line must be rejected before any parsing.
  std::stringstream stream(
      "emdpa-checkpoint 1\natomz 1 mass 0x1p+0 box 0x1p+0 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsTruncatedStateLine) {
  std::stringstream stream("emdpa-checkpoint 1\natoms 1 mass 0x1p+0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsTrailingGarbageInNumber) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass 1.0x box 0x1p+0 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::stringstream stream("not-a-checkpoint 1\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsWrongVersion) {
  std::stringstream stream("emdpa-checkpoint 99\natoms 0 mass 1 box 1 step 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsTruncatedAtoms) {
  const ParticleSystem original = sample_system();
  std::stringstream stream;
  save_checkpoint(stream, original, PeriodicBox(5.5), 0);
  std::string text = stream.str();
  text.resize(text.size() * 2 / 3);  // cut mid-atom
  std::stringstream cut(text);
  EXPECT_THROW(load_checkpoint(cut), RuntimeFailure);
}

TEST(Checkpoint, RejectsMalformedNumbers) {
  std::stringstream stream(
      "emdpa-checkpoint 1\natoms 1 mass banana box 1 step 0\n"
      "0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, RejectsMissingHeader) {
  std::stringstream stream("");
  EXPECT_THROW(load_checkpoint(stream), RuntimeFailure);
}

TEST(Checkpoint, EmptySystemRoundTrips) {
  ParticleSystem ps(1);
  std::stringstream stream;
  save_checkpoint(stream, ps, PeriodicBox(2.0), 7);
  const Checkpoint cp = load_checkpoint(stream);
  EXPECT_EQ(cp.system.size(), 1u);
  EXPECT_EQ(cp.step, 7);
}

}  // namespace
}  // namespace emdpa::md
