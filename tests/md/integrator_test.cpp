#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/integrator.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

Workload make_small_fluid(std::size_t n = 64, double temperature = 0.7) {
  WorkloadSpec spec;
  spec.n_atoms = n;
  spec.temperature = temperature;
  return make_lattice_workload(spec);
}

TEST(VelocityVerlet, RejectsNonPositiveTimeStep) {
  EXPECT_THROW(VelocityVerlet(0.0), ContractViolation);
  EXPECT_THROW(VelocityVerlet(-0.1), ContractViolation);
}

TEST(VelocityVerlet, PrimeSetsAccelerations) {
  Workload w = make_small_fluid();
  LjParams lj;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.005);
  const auto e = vv.prime(w.system, w.box, lj, kernel);
  EXPECT_GT(e.kinetic, 0.0);
  EXPECT_LT(e.potential, 0.0);  // bound liquid
  bool any_nonzero = false;
  for (const auto& a : w.system.accelerations()) {
    if (length_squared(a) > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(VelocityVerlet, MomentumConservedOverManySteps) {
  Workload w = make_small_fluid();
  LjParams lj;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.004);
  vv.prime(w.system, w.box, lj, kernel);
  for (int s = 0; s < 50; ++s) vv.step(w.system, w.box, lj, kernel);
  const Vec3d p = total_momentum_of(w.system);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
  EXPECT_NEAR(p.z, 0.0, 1e-9);
}

TEST(VelocityVerlet, EnergyConservedWithShiftedPotential) {
  // Shifted LJ removes the cutoff energy discontinuity; with a small step
  // the total energy drift over 200 steps must be tiny.
  Workload w = make_small_fluid(64, 0.5);
  LjParams lj;
  lj.shifted = true;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.002);
  const auto e0 = vv.prime(w.system, w.box, lj, kernel);
  StepEnergies last{};
  for (int s = 0; s < 200; ++s) last = vv.step(w.system, w.box, lj, kernel);
  const double scale = std::fabs(e0.total()) + std::fabs(e0.kinetic);
  EXPECT_NEAR(last.total(), e0.total(), 0.01 * scale);
}

TEST(VelocityVerlet, StepEnergiesAreConsistentWithState) {
  Workload w = make_small_fluid();
  LjParams lj;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.005);
  vv.prime(w.system, w.box, lj, kernel);
  const auto e = vv.step(w.system, w.box, lj, kernel);
  EXPECT_NEAR(e.kinetic, kinetic_energy_of(w.system), 1e-12);
}

TEST(VelocityVerlet, PositionsStayWrapped) {
  Workload w = make_small_fluid(64, 2.0);
  LjParams lj;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.005);
  vv.prime(w.system, w.box, lj, kernel);
  for (int s = 0; s < 20; ++s) vv.step(w.system, w.box, lj, kernel);
  for (const auto& p : w.system.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, w.box.edge());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, w.box.edge());
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, w.box.edge());
  }
}

TEST(VelocityVerlet, TimeReversible) {
  // Integrate forward, negate velocities, integrate the same number of
  // steps: the system returns (numerically) to its start.
  Workload w = make_small_fluid(32, 0.3);
  const std::vector<Vec3d> start = w.system.positions();
  LjParams lj;
  lj.shifted = true;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.002);
  vv.prime(w.system, w.box, lj, kernel);
  const int steps = 25;
  for (int s = 0; s < steps; ++s) vv.step(w.system, w.box, lj, kernel);
  for (auto& v : w.system.velocities()) v = -v;
  for (int s = 0; s < steps; ++s) vv.step(w.system, w.box, lj, kernel);
  for (std::size_t i = 0; i < start.size(); ++i) {
    const Vec3d dr = w.box.min_image(w.system.positions()[i] - start[i]);
    EXPECT_NEAR(length(dr), 0.0, 1e-8);
  }
}

TEST(VelocityVerlet, FrozenLatticeAtEquilibriumSpacingStaysPut) {
  // A perfect cubic lattice at T=0 is a force-equilibrium configuration by
  // symmetry: nothing should move.  N = 125 = 5^3 fills the lattice exactly
  // AND satisfies the minimum-image validity condition cutoff <= edge/2
  // (edge 5.29 at this density); smaller boxes genuinely break the symmetry
  // through one-sided minimum images.
  WorkloadSpec spec;
  spec.n_atoms = 125;
  spec.temperature = 0.0;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  ReferenceKernel kernel;
  VelocityVerlet vv(0.005);
  vv.prime(w.system, w.box, lj, kernel);
  const std::vector<Vec3d> start = w.system.positions();
  for (int s = 0; s < 10; ++s) vv.step(w.system, w.box, lj, kernel);
  for (std::size_t i = 0; i < start.size(); ++i) {
    EXPECT_NEAR(length(w.system.positions()[i] - start[i]), 0.0, 1e-9);
  }
}

class TimestepConvergence : public ::testing::TestWithParam<double> {};

TEST_P(TimestepConvergence, SmallerStepsConserveEnergyBetter) {
  Workload w = make_small_fluid(48, 0.6);
  LjParams lj;
  lj.shifted = true;
  ReferenceKernel kernel;
  const double dt = GetParam();
  VelocityVerlet vv(dt);
  const auto e0 = vv.prime(w.system, w.box, lj, kernel);
  StepEnergies last{};
  const int steps = static_cast<int>(0.2 / dt);  // fixed physical time
  for (int s = 0; s < steps; ++s) last = vv.step(w.system, w.box, lj, kernel);
  // Velocity Verlet is O(dt^2) away from the cutoff, but atoms crossing the
  // truncation radius inject O(dt)-ish noise in the (unsmoothed) force, so
  // assert a looser dt^1.5 envelope — still strong enough to catch a broken
  // integrator, whose drift would not shrink with dt at all.
  const double drift = std::fabs(last.total() - e0.total());
  EXPECT_LT(drift, 0.5 * std::pow(dt / 0.004, 1.5) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Steps, TimestepConvergence,
                         ::testing::Values(0.001, 0.002, 0.004));

}  // namespace
}  // namespace emdpa::md
