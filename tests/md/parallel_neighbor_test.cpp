#include <gtest/gtest.h>

#include <cmath>

#include "core/thread_pool.h"
#include "md/integrator.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/soa_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

/// The list kernel is the host fast path: it must reproduce the scalar
/// reference exactly — same unordered pair stats, same PE, same forces.
class NeighborListAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NeighborListAgreement, MatchesReferenceKernel) {
  WorkloadSpec spec;
  spec.n_atoms = GetParam();
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  ReferenceKernel ref;
  NeighborListKernel list;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = list.compute(w.system.positions(), w.box, lj, 1.0);

  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  // Candidates differ by design: the list prunes to cutoff+skin.
  EXPECT_LE(b.stats.candidates, a.stats.candidates);
  const double scale = std::fabs(a.potential_energy) + 1.0;
  EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-10 * scale);
  EXPECT_NEAR(a.virial, b.virial, 1e-10 * scale);
  ASSERT_EQ(a.accelerations.size(), b.accelerations.size());
  for (std::size_t i = 0; i < a.accelerations.size(); ++i) {
    const double fscale = length(a.accelerations[i]) + 1.0;
    EXPECT_LT(length(a.accelerations[i] - b.accelerations[i]), 1e-10 * fscale)
        << "atom " << i;
  }
}

// 27 exercises the degenerate all-pairs fallback (box < 3 cells per axis);
// 171 is deliberately not a multiple of any SIMD width; 2048 has a real grid.
INSTANTIATE_TEST_SUITE_P(AtomCounts, NeighborListAgreement,
                         ::testing::Values(27, 64, 171, 256, 512, 2048));

TEST(NeighborListKernel, MatchesReferenceOnRandomGas) {
  WorkloadSpec spec;
  spec.n_atoms = 150;
  spec.density = 0.5;
  Workload w = make_random_gas_workload(spec, 0.8);
  LjParams lj;

  ReferenceKernel ref;
  NeighborListKernel list;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = list.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-10);
}

TEST(NeighborListKernel, ParallelIsBitIdenticalAcrossThreadCounts) {
  // The build's two-pass sweep and the kernel's ordered row reduction make
  // the result a pure function of the inputs: any pool size, same bits.
  WorkloadSpec spec;
  spec.n_atoms = 500;
  spec.temperature = 0.5;
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  NeighborListKernel serial;
  const auto want = serial.compute(w.system.positions(), w.box, lj, 1.0);

  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    NeighborListKernel::Options options;
    options.pool = &pool;
    NeighborListKernel parallel(options);
    const auto got = parallel.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_EQ(got.potential_energy, want.potential_energy) << threads;
    EXPECT_EQ(got.virial, want.virial) << threads;
    EXPECT_EQ(got.stats.candidates, want.stats.candidates) << threads;
    EXPECT_EQ(got.stats.interacting, want.stats.interacting) << threads;
    for (std::size_t i = 0; i < want.accelerations.size(); ++i) {
      EXPECT_EQ(got.accelerations[i], want.accelerations[i])
          << threads << " threads, atom " << i;
    }
  }
}

TEST(NeighborListKernel, ReusesListAcrossCloseConfigurations) {
  WorkloadSpec spec;
  spec.n_atoms = 256;
  spec.temperature = 0.5;
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  NeighborListKernel::Options options;
  options.skin = 0.4;
  NeighborListKernel kernel(options);
  ReferenceKernel ref;
  VelocityVerlet vv(0.002);
  vv.prime(w.system, w.box, lj, ref);
  for (int s = 0; s < 20; ++s) {
    vv.step(w.system, w.box, lj, ref);
    const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
    const auto b = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_NEAR(a.potential_energy, b.potential_energy,
                1e-9 * std::fabs(a.potential_energy))
        << "step " << s;
  }
  EXPECT_EQ(kernel.evaluations(), 20u);
  EXPECT_LT(kernel.rebuilds(), 8u);
  EXPECT_GE(kernel.rebuilds(), 1u);
}

TEST(NeighborListKernel, CutoffChangeForcesRebuild) {
  // Same stale-cutoff scenario as the Verlet regression test: the list path
  // must never reuse a list built for a different cutoff.
  std::vector<Vec3d> pos = {{5.0, 5.0, 5.0}, {7.0, 5.0, 5.0}};
  PeriodicBox box(20.0);
  NeighborListKernel kernel;

  LjParams narrow;
  narrow.cutoff = 1.5;
  const auto before = kernel.compute(pos, box, narrow, 1.0);
  EXPECT_EQ(before.stats.interacting, 0u);
  EXPECT_EQ(before.potential_energy, 0.0);

  LjParams wide;
  wide.cutoff = 2.5;
  const auto after = kernel.compute(pos, box, wide, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 2u);
  EXPECT_EQ(after.stats.interacting, 1u);
  EXPECT_NEAR(after.potential_energy, wide.pair_energy(4.0), 1e-12);
}

TEST(NeighborListKernel, SkinDisplacementForcesRebuild) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  NeighborListKernel::Options options;
  options.skin = 0.3;
  NeighborListKernel kernel(options);
  kernel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 1u);

  // Within skin/2: reuse.
  w.system.positions()[0].x += 0.1;
  kernel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 1u);

  // Past skin/2: rebuild.
  w.system.positions()[0].x += 0.1;
  kernel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(kernel.rebuilds(), 2u);
}

TEST(NeighborListKernel, CandidatesBoundedByListNotNSquared) {
  WorkloadSpec spec;
  spec.n_atoms = 2048;
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  NeighborListKernel kernel;
  const auto r = kernel.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_LT(r.stats.candidates, 2048ull * 100ull);
  EXPECT_GT(r.stats.interacting, 0u);

  SoaKernel soa;
  const auto n2 = soa.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(r.stats.interacting, n2.stats.interacting);
  EXPECT_LT(r.stats.candidates, n2.stats.candidates / 10);
}

TEST(NeighborListKernel, SinglePrecisionInstantiation) {
  WorkloadSpec spec;
  spec.n_atoms = 125;
  Workload w = make_lattice_workload(spec);
  std::vector<Vec3f> pos;
  for (const auto& p : w.system.positions()) pos.push_back(vec_cast<float>(p));
  const PeriodicBoxF box(static_cast<float>(w.box.edge()));
  const auto lj = LjParams{}.cast<float>();

  ReferenceKernelF ref;
  NeighborListKernelF kernel;
  const auto a = ref.compute(pos, box, lj, 1.0f);
  const auto b = kernel.compute(pos, box, lj, 1.0f);
  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(b.potential_energy, a.potential_energy,
              1e-4f * std::fabs(a.potential_energy));
}

TEST(ParallelNeighborList, PaddedRowsHoldSelfIndex) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  ParallelNeighborListT<double> list(0.3);
  list.build(w.system.positions(), w.box, lj.cutoff);
  const auto& begin = list.row_begin();
  const auto& entries = list.entries();
  ASSERT_EQ(begin.size(), 65u);
  // Rows are padded to the ISA-independent accumulation block, not the
  // dispatched pack width, so one list layout serves every runtime ISA.
  const std::size_t width = NeighborListKernel::block_width();
  std::uint64_t directed = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t extent = begin[i + 1] - begin[i];
    EXPECT_EQ(extent % width, 0u) << "row " << i;
    for (std::size_t k = begin[i]; k < begin[i + 1]; ++k) {
      if (entries[k] == i) continue;  // padding (or a coincident self slot)
      ++directed;
    }
  }
  EXPECT_EQ(directed, list.directed_entries());
  EXPECT_GT(directed, 0u);
}

TEST(ParallelNeighborList, EnsureRebuildsOnlyWhenStale) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  ParallelNeighborListT<double> list(0.3);
  EXPECT_TRUE(list.ensure(w.system.positions(), w.box, lj.cutoff));
  EXPECT_FALSE(list.ensure(w.system.positions(), w.box, lj.cutoff));
  EXPECT_TRUE(list.ensure(w.system.positions(), w.box, lj.cutoff + 0.5));
  list.invalidate();
  EXPECT_TRUE(list.ensure(w.system.positions(), w.box, lj.cutoff));
  EXPECT_EQ(list.rebuilds(), 3u);
}

}  // namespace
}  // namespace emdpa::md
