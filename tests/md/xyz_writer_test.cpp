#include <gtest/gtest.h>

#include <sstream>

#include "md/xyz_writer.h"

namespace emdpa::md {
namespace {

TEST(XyzWriter, FrameFormat) {
  ParticleSystem ps(2);
  ps.positions()[0] = {1.0, 2.0, 3.0};
  ps.positions()[1] = {4.5, 5.5, 6.5};

  std::ostringstream os;
  XyzWriter writer(os, "Ar");
  writer.write_frame(ps, "step 0");

  const std::string expected =
      "2\n"
      "step 0\n"
      "Ar 1.000000 2.000000 3.000000\n"
      "Ar 4.500000 5.500000 6.500000\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(XyzWriter, CountsFrames) {
  ParticleSystem ps(1);
  std::ostringstream os;
  XyzWriter writer(os);
  EXPECT_EQ(writer.frames_written(), 0u);
  writer.write_frame(ps, "a");
  writer.write_frame(ps, "b");
  EXPECT_EQ(writer.frames_written(), 2u);
}

TEST(XyzWriter, StripsNewlinesFromComment) {
  ParticleSystem ps(1);
  std::ostringstream os;
  XyzWriter writer(os);
  writer.write_frame(ps, "line1\nline2");
  // Comment must remain a single line.
  std::string out = os.str();
  int newlines = 0;
  for (char c : out) newlines += (c == '\n');
  EXPECT_EQ(newlines, 3);  // count, comment, one atom
}

TEST(XyzWriter, CustomElementSymbol) {
  ParticleSystem ps(1);
  std::ostringstream os;
  XyzWriter writer(os, "Xe");
  writer.write_frame(ps, "c");
  EXPECT_NE(os.str().find("Xe "), std::string::npos);
}

}  // namespace
}  // namespace emdpa::md
