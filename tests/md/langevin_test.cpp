#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/langevin.h"
#include "md/observables.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(Langevin, Validation) {
  EXPECT_THROW(LangevinThermostat(-1.0, 1.0, 1), ContractViolation);
  EXPECT_THROW(LangevinThermostat(1.0, 0.0, 1), ContractViolation);
  LangevinThermostat ok(1.0, 1.0, 1);
  ParticleSystem ps(4);
  EXPECT_THROW(ok.apply(ps, 0.0), ContractViolation);
}

TEST(Langevin, DeterministicForSameSeed) {
  ParticleSystem a(16), b(16);
  LangevinThermostat ta(1.0, 2.0, 7), tb(1.0, 2.0, 7);
  for (int s = 0; s < 5; ++s) {
    ta.apply(a, 0.01);
    tb.apply(b, 0.01);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.velocities()[i], b.velocities()[i]);
  }
}

TEST(Langevin, SamplesTargetTemperatureFromCold) {
  // Pure OU process (no forces): long-run mean temperature == target.
  ParticleSystem ps(256);
  LangevinThermostat thermostat(1.5, 5.0, 42);
  double t_sum = 0.0;
  const int steps = 2000;
  for (int s = 0; s < steps; ++s) {
    thermostat.apply(ps, 0.01);
    if (s >= steps / 2) t_sum += temperature_of(ps);
  }
  EXPECT_NEAR(t_sum / (steps / 2), 1.5, 0.1);
}

TEST(Langevin, CoolsHotSystems) {
  WorkloadSpec spec;
  spec.n_atoms = 128;
  spec.temperature = 5.0;
  Workload w = make_lattice_workload(spec);
  LangevinThermostat thermostat(0.5, 5.0, 3);
  for (int s = 0; s < 500; ++s) thermostat.apply(w.system, 0.01);
  EXPECT_NEAR(temperature_of(w.system), 0.5, 0.2);
}

TEST(Langevin, ZeroTargetFreezes) {
  WorkloadSpec spec;
  spec.n_atoms = 64;
  spec.temperature = 1.0;
  Workload w = make_lattice_workload(spec);
  LangevinThermostat thermostat(0.0, 10.0, 3);
  for (int s = 0; s < 200; ++s) thermostat.apply(w.system, 0.01);
  EXPECT_LT(temperature_of(w.system), 1e-6);
}

TEST(Langevin, ExactOuDiscretisation) {
  // One application from a known state: v' = c1*v + noise; with enormous
  // friction c1 ~ 0, the old velocity is forgotten entirely.
  ParticleSystem ps(1000);
  for (auto& v : ps.velocities()) v = {100.0, 0, 0};
  LangevinThermostat thermostat(1.0, 1e6, 11);
  thermostat.apply(ps, 1.0);
  EXPECT_NEAR(temperature_of(ps), 1.0, 0.1);  // memoryless resample
}

TEST(Langevin, RngStateRoundTripContinuesTheNoiseSequence) {
  // The checkpoint seam: capturing rng_state() and restoring it into a
  // FRESH thermostat (different seed — the restore must fully overwrite it)
  // continues the noise sequence bit-for-bit.
  ParticleSystem a(32), b(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a.velocities()[i] = b.velocities()[i] = {0.1 * static_cast<double>(i), 0, 0};
  }
  LangevinThermostat original(1.0, 2.0, 7);
  for (int s = 0; s < 3; ++s) original.apply(a, 0.01);

  LangevinThermostat restored(1.0, 2.0, 999);
  restored.restore_rng(original.rng_state());
  // Bring b to the same pre-restore velocity state via a twin of `original`.
  LangevinThermostat twin(1.0, 2.0, 7);
  for (int s = 0; s < 3; ++s) twin.apply(b, 0.01);

  original.apply(a, 0.01);
  restored.apply(b, 0.01);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.velocities()[i], b.velocities()[i]) << "atom " << i;
  }
}

TEST(Langevin, RngStateCapturesTheCachedGaussian) {
  // Box–Muller produces gaussians in pairs; an odd draw count leaves one
  // cached.  3 atoms * 3 components = 9 draws per apply — odd — so the
  // cached-value flag must be set and must survive the round trip.
  LangevinThermostat thermostat(1.0, 2.0, 13);
  ParticleSystem ps(3);
  thermostat.apply(ps, 0.01);
  const Rng::State state = thermostat.rng_state();
  EXPECT_TRUE(state.has_cached_gaussian);

  LangevinThermostat restored(1.0, 2.0, 13);
  restored.restore_rng(state);
  EXPECT_EQ(restored.rng_state().cached_gaussian, state.cached_gaussian);
  EXPECT_EQ(restored.rng_state().s, state.s);
}

TEST(Langevin, MassScalesNoise) {
  // Heavier atoms get slower thermal velocities at the same temperature;
  // the *temperature* (which folds in the mass) still matches.
  ParticleSystem ps(512);
  ps.set_mass(4.0);
  LangevinThermostat thermostat(2.0, 1e6, 5);
  thermostat.apply(ps, 1.0);
  EXPECT_NEAR(temperature_of(ps), 2.0, 0.2);
  double v2 = 0;
  for (const auto& v : ps.velocities()) v2 += length_squared(v);
  v2 /= ps.size();
  EXPECT_NEAR(v2, 3.0 * 2.0 / 4.0, 0.2);  // <v^2> = 3T/m
}

}  // namespace
}  // namespace emdpa::md
