// Edge cases for the parallel neighbour-list binning pass: exact cell-edge
// coordinates, pathological occupancy (every atom in one cell), and the
// empty / single-atom systems where off-by-ones in the histogram-merge or
// scratch-offset arithmetic would first show.  Each scenario is checked for
// physics agreement with the scalar reference AND for bitwise list
// stability across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"
#include "core/thread_pool.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

/// Compare list kernel vs the scalar reference on an explicit configuration
/// and assert the built CSR is bitwise thread-invariant.
void expect_list_matches_reference(const std::vector<Vec3d>& positions,
                                   const PeriodicBox& box, double skin = 0.3) {
  LjParams lj;
  ReferenceKernel ref;
  const auto expected = ref.compute(positions, box, lj, 1.0);

  NeighborListKernel::Options options;
  options.skin = skin;
  NeighborListKernel serial(options);
  const auto got = serial.compute(positions, box, lj, 1.0);

  EXPECT_EQ(got.stats.interacting, expected.stats.interacting);
  const double scale = std::fabs(expected.potential_energy) + 1.0;
  EXPECT_NEAR(got.potential_energy, expected.potential_energy, 1e-10 * scale);
  ASSERT_EQ(got.accelerations.size(), expected.accelerations.size());
  for (std::size_t i = 0; i < expected.accelerations.size(); ++i) {
    const double fscale = length(expected.accelerations[i]) + 1.0;
    EXPECT_LT(length(got.accelerations[i] - expected.accelerations[i]),
              1e-10 * fscale)
        << "atom " << i;
  }

  ParallelNeighborListT<double> reference_list(skin);
  reference_list.build(positions, box, lj.cutoff);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ParallelNeighborListT<double> list(skin, &pool);
    list.build(positions, box, lj.cutoff);
    ASSERT_EQ(list.row_begin(), reference_list.row_begin()) << threads;
    ASSERT_EQ(list.entries(), reference_list.entries()) << threads;
    EXPECT_EQ(list.build_distance_tests(),
              reference_list.build_distance_tests())
        << threads;
  }
}

TEST(NeighborBinning, AtomsExactlyOnCellBoundaries) {
  // Box sized so the cell edge is exactly 1.4: every atom below sits on an
  // exact multiple of it, the worst case for the coord*inv_cell truncation
  // (an atom rounding into the wrong cell is still found — the stencil
  // over-covers by a full cell — but a clamp bug would crash or drop pairs).
  const double edge = 14.0;
  const PeriodicBox box(edge);
  std::vector<Vec3d> positions;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      positions.push_back({1.4 * x, 1.4 * y, 1.4 * (x + y) / 2.0});
    }
  }
  // Include coordinates at the box edge itself (wraps to 0; z offset keeps
  // the wrapped image clear of the lattice atom at the origin) and just
  // under the edge.
  positions.push_back({edge, edge, edge + 0.7});
  positions.push_back({std::nextafter(edge, 0.0), 0.35, 7.0});
  expect_list_matches_reference(positions, box);
}

TEST(NeighborBinning, AllAtomsInOneCell) {
  // 32 atoms jammed into one corner cell of a big, otherwise-empty box:
  // every histogram count lands in a single bin and every row's scratch
  // range is the full cluster.
  const PeriodicBox box(20.0);
  Rng rng(7);
  std::vector<Vec3d> positions;
  for (int i = 0; i < 32; ++i) {
    positions.push_back(
        {rng.uniform(0.0, 1.2), rng.uniform(0.0, 1.2), rng.uniform(0.0, 1.2)});
  }
  expect_list_matches_reference(positions, box);
}

TEST(NeighborBinning, EmptySystem) {
  const PeriodicBox box(10.0);
  LjParams lj;
  NeighborListKernel kernel;
  const auto result = kernel.compute({}, box, lj, 1.0);
  EXPECT_TRUE(result.accelerations.empty());
  EXPECT_EQ(result.potential_energy, 0.0);
  EXPECT_EQ(result.stats.candidates, 0u);
  EXPECT_EQ(result.stats.interacting, 0u);

  ParallelNeighborListT<double> list(0.3);
  list.build({}, box, lj.cutoff);
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.directed_entries(), 0u);
  EXPECT_EQ(list.build_distance_tests(), 0u);
  ASSERT_EQ(list.row_begin().size(), 1u);
  EXPECT_TRUE(list.entries().empty());
}

TEST(NeighborBinning, SingleAtom) {
  const PeriodicBox box(10.0);
  LjParams lj;
  NeighborListKernel kernel;
  const auto result = kernel.compute({{5.0, 5.0, 5.0}}, box, lj, 1.0);
  ASSERT_EQ(result.accelerations.size(), 1u);
  EXPECT_EQ(result.accelerations[0], Vec3d{});
  EXPECT_EQ(result.potential_energy, 0.0);
  EXPECT_EQ(result.stats.interacting, 0u);

  ParallelNeighborListT<double> list(0.3);
  list.build({{5.0, 5.0, 5.0}}, box, lj.cutoff);
  EXPECT_EQ(list.directed_entries(), 0u);
  EXPECT_EQ(list.build_distance_tests(), 0u);
  // The single row may still carry SIMD padding slots; all must self-refer.
  for (const std::uint32_t e : list.entries()) EXPECT_EQ(e, 0u);
}

TEST(NeighborBinning, NegativeAndFarOutOfBoxPositions) {
  // Unwrapped inputs several boxes away must bin like their wrapped images.
  const PeriodicBox box(8.0);
  std::vector<Vec3d> near = {{1.0, 1.0, 1.0}, {2.0, 1.5, 1.2}, {7.5, 7.5, 7.5}};
  std::vector<Vec3d> far = {{1.0 - 16.0, 1.0 + 24.0, 1.0},
                            {2.0 + 8.0, 1.5 - 8.0, 1.2 + 80.0},
                            {7.5, 7.5 - 32.0, 7.5}};
  LjParams lj;
  NeighborListKernel a, b;
  const auto ra = a.compute(near, box, lj, 1.0);
  const auto rb = b.compute(far, box, lj, 1.0);
  // Same cells, same pairs — but minimum-image on coordinates of very
  // different magnitude (1.2 vs 81.2) rounds at the last ulp, so the match
  // is near-exact rather than bitwise.
  EXPECT_EQ(ra.stats.interacting, rb.stats.interacting);
  EXPECT_NEAR(ra.potential_energy, rb.potential_energy,
              1e-12 * (std::fabs(ra.potential_energy) + 1.0));
  for (std::size_t i = 0; i < near.size(); ++i) {
    EXPECT_LT(length(ra.accelerations[i] - rb.accelerations[i]),
              1e-12 * (length(ra.accelerations[i]) + 1.0))
        << i;
  }
}

TEST(NeighborBinning, DistanceTestAccountingIsExact) {
  // build_distance_tests must equal the directed stencil candidate count:
  // for a uniformly filled grid it is bounded below by the directed entry
  // count and above by N * (stencil population).  Pin an exact small case:
  // two atoms alone in a big box test exactly each other (1 directed test
  // each) when they share a stencil, zero entries when out of range.
  const PeriodicBox box(20.0);
  ParallelNeighborListT<double> list(0.3);
  list.build({{1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}}, box, 2.5);
  EXPECT_EQ(list.build_distance_tests(), 2u);
  EXPECT_EQ(list.directed_entries(), 2u);

  list.invalidate();
  list.build({{1.0, 1.0, 1.0}, {15.0, 15.0, 15.0}}, box, 2.5);
  EXPECT_EQ(list.build_distance_tests(), 0u);  // disjoint stencils
  EXPECT_EQ(list.directed_entries(), 0u);
}

}  // namespace
}  // namespace emdpa::md
