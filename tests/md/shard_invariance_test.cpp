// Shard-invariance property harness: the bitwise proof behind the sharded
// neighbour-list path (md/sharded_domain.h).
//
// Over the SAME 50 seeded configs the flat list is proven against
// (tests/md/property_configs.h — atom counts up to 20k, varying density,
// cutoff, skin, including degenerate boxes that force the all-pairs
// fallback), assert for every shard count in {1, 2, 4, 8} crossed with
// every thread count in {1, 8}:
//
//  1. The sharded build's CSR — row offsets AND entry order — is
//     byte-identical to the flat serial build's.  This is the load-bearing
//     contract: identical CSR + the shared force path = identical physics.
//  2. The sharded kernel's forces, PE, virial and pair statistics are
//     bitwise the flat kernel's.
//  3. ensure()'s fused rebuild path (displacement check + prebinned build)
//     produces the same CSR as a from-scratch build.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/thread_pool.h"
#include "md/parallel_neighbor.h"
#include "md/sharded_domain.h"
#include "md/workload.h"
#include "property_configs.h"

namespace emdpa::md {
namespace {

class ShardInvarianceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardInvarianceTest, ShardedCsrAndForcesMatchFlatBitwise) {
  const PropertyConfig config = make_config(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "config " << config.index << ": n=" << config.n_atoms
               << " density=" << config.density << " cutoff=" << config.cutoff
               << " skin=" << config.skin << " degenerate="
               << config.degenerate);

  Workload w = make_jittered_workload(config);
  LjParams lj;
  lj.cutoff = config.cutoff;

  // Flat serial baseline: the CSR every combination below must reproduce.
  ParallelNeighborListT<double> flat_list(config.skin);
  flat_list.build(w.system.positions(), w.box, lj.cutoff);

  NeighborListKernel::Options flat_options;
  flat_options.skin = config.skin;
  NeighborListKernel flat_kernel(flat_options);
  const ForceResult flat =
      flat_kernel.compute(w.system.positions(), w.box, lj, 1.0);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 8u}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ThreadPool pool(threads);
      ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

      // --- 1. the CSR itself, byte for byte ----------------------------
      ShardedNeighborListT<double> list(config.skin, pool_ptr, shards);
      list.build(w.system.positions(), w.box, lj.cutoff);
      EXPECT_EQ(list.directed_entries(), flat_list.directed_entries());
      EXPECT_EQ(list.build_distance_tests(),
                flat_list.build_distance_tests());
      ASSERT_EQ(list.row_begin(), flat_list.row_begin());
      ASSERT_EQ(list.entries(), flat_list.entries());

      // --- 2. forces through the kernel, bitwise -----------------------
      ShardedNeighborListKernel::Options options;
      options.skin = config.skin;
      options.pool = pool_ptr;
      options.shards = shards;
      ShardedNeighborListKernel kernel(options);
      const ForceResult got =
          kernel.compute(w.system.positions(), w.box, lj, 1.0);
      EXPECT_EQ(got.potential_energy, flat.potential_energy);
      EXPECT_EQ(got.virial, flat.virial);
      EXPECT_EQ(got.stats.candidates, flat.stats.candidates);
      EXPECT_EQ(got.stats.interacting, flat.stats.interacting);
      ASSERT_EQ(got.accelerations.size(), flat.accelerations.size());
      for (std::size_t i = 0; i < flat.accelerations.size(); ++i) {
        ASSERT_EQ(got.accelerations[i], flat.accelerations[i]) << "atom " << i;
      }

      // --- 3. the fused ensure() path rebuilds to the same CSR ---------
      // Push every atom past half the skin so ensure() must rebuild via
      // the prebinned fused pass, then verify against a from-scratch flat
      // build of the moved positions.
      std::vector<Vec3d> moved = w.system.positions();
      const double nudge = 0.51 * config.skin;
      for (std::size_t i = 0; i < moved.size(); ++i) {
        moved[i].x += (i % 2 == 0 ? nudge : -nudge);
      }
      ASSERT_TRUE(list.ensure(moved, w.box, lj.cutoff));
      ParallelNeighborListT<double> flat_moved(config.skin);
      flat_moved.build(moved, w.box, lj.cutoff);
      ASSERT_EQ(list.row_begin(), flat_moved.row_begin());
      ASSERT_EQ(list.entries(), flat_moved.entries());

      // And an ensure() with no motion is a no-op at any shard count.
      EXPECT_FALSE(list.ensure(moved, w.box, lj.cutoff));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededConfigs, ShardInvarianceTest,
                         ::testing::Range<std::size_t>(0, 50));

}  // namespace
}  // namespace emdpa::md
