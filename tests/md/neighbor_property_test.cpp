// Randomized property harness for the parallel neighbour-list path.
//
// The neighbour list is the hottest correctness-critical data structure in
// the repo: every large-N simulation flows through it.  This suite
// cross-checks the list kernel against an N^2 kernel over ~50 seeded random
// configurations — varying atom count (up to 20k), density, temperature,
// cutoff, skin and box shape, including degenerate boxes barely wider than
// 2*cutoff that force the all-pairs fallback — and asserts three contracts
// on every one:
//
//  1. Physics equivalence: forces, PE and virial match the N^2 reference
//     within double-reduction tolerance, and the unordered interacting-pair
//     count is IDENTICAL (the list may prune candidates, never pairs).
//  2. Bitwise thread invariance: the kernel's output at 2 and 8 threads is
//     bit-for-bit the serial output.
//  3. Bitwise list invariance: the built CSR itself (row offsets AND entry
//     order) is identical at every thread count — the parallel binning pass
//     must produce the exact stable counting sort a serial build would.
//
// Everything is seeded: a failure reproduces from the config index alone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/thread_pool.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/soa_kernel.h"
#include "md/workload.h"
#include "property_configs.h"

namespace emdpa::md {
namespace {

class NeighborPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NeighborPropertyTest, ListMatchesN2AndIsThreadInvariant) {
  const PropertyConfig config = make_config(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "config " << config.index << ": n=" << config.n_atoms
               << " density=" << config.density << " cutoff=" << config.cutoff
               << " skin=" << config.skin << " degenerate="
               << config.degenerate);

  Workload w = make_jittered_workload(config);
  LjParams lj;
  lj.cutoff = config.cutoff;

  // --- 1. physics equivalence against an N^2 kernel -----------------------
  // The scalar reference is ground truth up to 2048 atoms; above that the
  // SoA N^2 kernel stands in (itself pinned bitwise-adjacent to the
  // reference by the md suite) so 20k-atom configs stay affordable.
  ForceResult expected;
  if (config.n_atoms <= 2048) {
    ReferenceKernel ref;
    expected = ref.compute(w.system.positions(), w.box, lj, 1.0);
  } else {
    SoaKernel soa;
    expected = soa.compute(w.system.positions(), w.box, lj, 1.0);
  }

  NeighborListKernel::Options options;
  options.skin = config.skin;
  NeighborListKernel serial(options);
  const auto got = serial.compute(w.system.positions(), w.box, lj, 1.0);

  EXPECT_EQ(got.stats.interacting, expected.stats.interacting);
  EXPECT_LE(got.stats.candidates, expected.stats.candidates);
  const double pe_scale = std::fabs(expected.potential_energy) + 1.0;
  EXPECT_NEAR(got.potential_energy, expected.potential_energy,
              1e-9 * pe_scale);
  EXPECT_NEAR(got.virial, expected.virial, 1e-9 * pe_scale);
  ASSERT_EQ(got.accelerations.size(), expected.accelerations.size());
  for (std::size_t i = 0; i < expected.accelerations.size(); ++i) {
    const double scale = length(expected.accelerations[i]) + 1.0;
    ASSERT_LT(length(got.accelerations[i] - expected.accelerations[i]),
              1e-9 * scale)
        << "atom " << i;
  }

  // --- 2. bitwise kernel invariance across thread counts ------------------
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    NeighborListKernel::Options parallel_options;
    parallel_options.skin = config.skin;
    parallel_options.pool = &pool;
    NeighborListKernel parallel(parallel_options);
    const auto p = parallel.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_EQ(p.potential_energy, got.potential_energy) << threads;
    EXPECT_EQ(p.virial, got.virial) << threads;
    EXPECT_EQ(p.stats.candidates, got.stats.candidates) << threads;
    EXPECT_EQ(p.stats.interacting, got.stats.interacting) << threads;
    for (std::size_t i = 0; i < got.accelerations.size(); ++i) {
      ASSERT_EQ(p.accelerations[i], got.accelerations[i])
          << threads << " threads, atom " << i;
    }
  }

  // --- 3. bitwise list invariance: the CSR itself, entry order included ---
  ParallelNeighborListT<double> reference_list(config.skin);
  reference_list.build(w.system.positions(), w.box, lj.cutoff);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ParallelNeighborListT<double> list(config.skin, &pool);
    list.build(w.system.positions(), w.box, lj.cutoff);
    EXPECT_EQ(list.directed_entries(), reference_list.directed_entries());
    EXPECT_EQ(list.build_distance_tests(),
              reference_list.build_distance_tests());
    ASSERT_EQ(list.row_begin(), reference_list.row_begin()) << threads;
    ASSERT_EQ(list.entries(), reference_list.entries()) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(SeededConfigs, NeighborPropertyTest,
                         ::testing::Range<std::size_t>(0, 50));

}  // namespace
}  // namespace emdpa::md
