// Randomized property harness for the parallel neighbour-list path.
//
// The neighbour list is the hottest correctness-critical data structure in
// the repo: every large-N simulation flows through it.  This suite
// cross-checks the list kernel against an N^2 kernel over ~50 seeded random
// configurations — varying atom count (up to 20k), density, temperature,
// cutoff, skin and box shape, including degenerate boxes barely wider than
// 2*cutoff that force the all-pairs fallback — and asserts three contracts
// on every one:
//
//  1. Physics equivalence: forces, PE and virial match the N^2 reference
//     within double-reduction tolerance, and the unordered interacting-pair
//     count is IDENTICAL (the list may prune candidates, never pairs).
//  2. Bitwise thread invariance: the kernel's output at 2 and 8 threads is
//     bit-for-bit the serial output.
//  3. Bitwise list invariance: the built CSR itself (row offsets AND entry
//     order) is identical at every thread count — the parallel binning pass
//     must produce the exact stable counting sort a serial build would.
//
// Everything is seeded: a failure reproduces from the config index alone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/random.h"
#include "core/thread_pool.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/soa_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

struct PropertyConfig {
  std::size_t index = 0;
  std::size_t n_atoms = 0;
  double density = 0;
  double temperature = 0;
  double cutoff = 0;
  double skin = 0;
  bool degenerate = false;  ///< box barely wider than 2*(cutoff+skin)
};

/// Deterministically expand a config index into a workload recipe.  Most
/// configs are small (fast reference comparison); every 10th is large
/// (4k–20k atoms, where the parallel binning actually has work to do);
/// every 7th shrinks the box until the all-pairs fallback engages.
PropertyConfig make_config(std::size_t index) {
  Rng rng(0xC0FFEEull * (index + 1) + index);
  static constexpr std::size_t kSmall[] = {32,  48,  64,   100,  128,  171, 200,
                                           256, 333, 512,  648,  777,  864, 1000,
                                           1331, 1500, 1728, 2048};
  static constexpr std::size_t kLarge[] = {4096, 8192, 20000, 5832, 6144};

  PropertyConfig config;
  config.index = index;
  config.degenerate = index % 7 == 3;
  const bool large = !config.degenerate && index % 10 == 9;
  config.n_atoms = large ? kLarge[(index / 10) % std::size(kLarge)]
                         : kSmall[rng.uniform_index(std::size(kSmall))];
  config.density = rng.uniform(0.2, 1.0);
  config.temperature = rng.uniform(0.2, 1.5);
  config.skin = rng.uniform(0.1, 0.5);

  const double edge = box_edge_for(config.n_atoms, config.density);
  if (config.degenerate) {
    // List radius at 95% of the half edge: the box fits fewer than
    // width cells per axis, so the build must take the all-pairs branch.
    config.cutoff = 0.95 * edge / 2.0 - config.skin;
  } else {
    // Keep cutoff + skin within the half edge the minimum-image convention
    // assumes; below that, draw freely.
    const double cap = 0.49 * edge - config.skin;
    config.cutoff = std::min(rng.uniform(1.8, 3.0), cap);
  }
  EXPECT_GT(config.cutoff, 0.5) << "config " << index << " has no physics";
  return config;
}

/// Lattice workload with per-atom jitter: random-looking positions with a
/// guaranteed minimum separation (jitter stays under half the lattice
/// spacing), cheap enough for 20k atoms.
Workload make_jittered_workload(const PropertyConfig& config) {
  WorkloadSpec spec;
  spec.n_atoms = config.n_atoms;
  spec.density = config.density;
  spec.temperature = config.temperature;
  spec.seed = 0x9E3779B9ull + config.index;
  Workload w = make_lattice_workload(spec);

  std::size_t side = 1;
  while (side * side * side < config.n_atoms) ++side;
  const double spacing = w.box.edge() / static_cast<double>(side);
  Rng rng(spec.seed ^ 0xDEADBEEFull);
  for (auto& p : w.system.positions()) {
    p.x += rng.uniform(-0.35, 0.35) * spacing;
    p.y += rng.uniform(-0.35, 0.35) * spacing;
    p.z += rng.uniform(-0.35, 0.35) * spacing;
  }
  return w;
}

class NeighborPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NeighborPropertyTest, ListMatchesN2AndIsThreadInvariant) {
  const PropertyConfig config = make_config(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "config " << config.index << ": n=" << config.n_atoms
               << " density=" << config.density << " cutoff=" << config.cutoff
               << " skin=" << config.skin << " degenerate="
               << config.degenerate);

  Workload w = make_jittered_workload(config);
  LjParams lj;
  lj.cutoff = config.cutoff;

  // --- 1. physics equivalence against an N^2 kernel -----------------------
  // The scalar reference is ground truth up to 2048 atoms; above that the
  // SoA N^2 kernel stands in (itself pinned bitwise-adjacent to the
  // reference by the md suite) so 20k-atom configs stay affordable.
  ForceResult expected;
  if (config.n_atoms <= 2048) {
    ReferenceKernel ref;
    expected = ref.compute(w.system.positions(), w.box, lj, 1.0);
  } else {
    SoaKernel soa;
    expected = soa.compute(w.system.positions(), w.box, lj, 1.0);
  }

  NeighborListKernel::Options options;
  options.skin = config.skin;
  NeighborListKernel serial(options);
  const auto got = serial.compute(w.system.positions(), w.box, lj, 1.0);

  EXPECT_EQ(got.stats.interacting, expected.stats.interacting);
  EXPECT_LE(got.stats.candidates, expected.stats.candidates);
  const double pe_scale = std::fabs(expected.potential_energy) + 1.0;
  EXPECT_NEAR(got.potential_energy, expected.potential_energy,
              1e-9 * pe_scale);
  EXPECT_NEAR(got.virial, expected.virial, 1e-9 * pe_scale);
  ASSERT_EQ(got.accelerations.size(), expected.accelerations.size());
  for (std::size_t i = 0; i < expected.accelerations.size(); ++i) {
    const double scale = length(expected.accelerations[i]) + 1.0;
    ASSERT_LT(length(got.accelerations[i] - expected.accelerations[i]),
              1e-9 * scale)
        << "atom " << i;
  }

  // --- 2. bitwise kernel invariance across thread counts ------------------
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    NeighborListKernel::Options parallel_options;
    parallel_options.skin = config.skin;
    parallel_options.pool = &pool;
    NeighborListKernel parallel(parallel_options);
    const auto p = parallel.compute(w.system.positions(), w.box, lj, 1.0);
    EXPECT_EQ(p.potential_energy, got.potential_energy) << threads;
    EXPECT_EQ(p.virial, got.virial) << threads;
    EXPECT_EQ(p.stats.candidates, got.stats.candidates) << threads;
    EXPECT_EQ(p.stats.interacting, got.stats.interacting) << threads;
    for (std::size_t i = 0; i < got.accelerations.size(); ++i) {
      ASSERT_EQ(p.accelerations[i], got.accelerations[i])
          << threads << " threads, atom " << i;
    }
  }

  // --- 3. bitwise list invariance: the CSR itself, entry order included ---
  ParallelNeighborListT<double> reference_list(config.skin);
  reference_list.build(w.system.positions(), w.box, lj.cutoff);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ParallelNeighborListT<double> list(config.skin, &pool);
    list.build(w.system.positions(), w.box, lj.cutoff);
    EXPECT_EQ(list.directed_entries(), reference_list.directed_entries());
    EXPECT_EQ(list.build_distance_tests(),
              reference_list.build_distance_tests());
    ASSERT_EQ(list.row_begin(), reference_list.row_begin()) << threads;
    ASSERT_EQ(list.entries(), reference_list.entries()) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(SeededConfigs, NeighborPropertyTest,
                         ::testing::Range<std::size_t>(0, 50));

}  // namespace
}  // namespace emdpa::md
