#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/bonded.h"

namespace emdpa::md {
namespace {

TEST(BondTopology, RejectsSelfBond) {
  BondTopology topo;
  EXPECT_THROW(topo.add_bond({3, 3, 1.0, 1.0}), ContractViolation);
}

TEST(BondTopology, RejectsNegativeParameters) {
  BondTopology topo;
  EXPECT_THROW(topo.add_bond({0, 1, -1.0, 1.0}), ContractViolation);
  EXPECT_THROW(topo.add_bond({0, 1, 1.0, -1.0}), ContractViolation);
}

TEST(BondTopology, LinearChainHasNMinusOneBonds) {
  const BondTopology topo = BondTopology::linear_chain(10, 5.0, 1.0);
  EXPECT_EQ(topo.size(), 9u);
  EXPECT_EQ(topo.bonds()[0].i, 0u);
  EXPECT_EQ(topo.bonds()[0].j, 1u);
  EXPECT_EQ(topo.bonds()[8].j, 9u);
}

TEST(BondTopology, AtRestLengthNoForceNoEnergy) {
  BondTopology topo;
  topo.add_bond({0, 1, 10.0, 1.5});
  std::vector<Vec3d> pos = {{0, 0, 0}, {1.5, 0, 0}};
  std::vector<Vec3d> acc(2);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc);
  EXPECT_NEAR(pe, 0.0, 1e-14);
  EXPECT_NEAR(length(acc[0]), 0.0, 1e-14);
}

TEST(BondTopology, StretchedBondPullsTogether) {
  BondTopology topo;
  topo.add_bond({0, 1, 4.0, 1.0});
  std::vector<Vec3d> pos = {{0, 0, 0}, {2.0, 0, 0}};  // stretch = 1
  std::vector<Vec3d> acc(2);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc);
  EXPECT_NEAR(pe, 0.5 * 4.0 * 1.0, 1e-12);   // 1/2 k x^2
  EXPECT_NEAR(acc[0].x, 4.0, 1e-12);          // pulled toward +x
  EXPECT_NEAR(acc[1].x, -4.0, 1e-12);
}

TEST(BondTopology, CompressedBondPushesApart) {
  BondTopology topo;
  topo.add_bond({0, 1, 4.0, 2.0});
  std::vector<Vec3d> pos = {{0, 0, 0}, {1.0, 0, 0}};  // compressed by 1
  std::vector<Vec3d> acc(2);
  topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc);
  EXPECT_LT(acc[0].x, 0.0);
  EXPECT_GT(acc[1].x, 0.0);
}

TEST(BondTopology, NewtonsThirdLawAcrossChain) {
  const BondTopology topo = BondTopology::linear_chain(6, 3.0, 0.9);
  std::vector<Vec3d> pos;
  for (int i = 0; i < 6; ++i) {
    pos.push_back({i * 1.1, 0.1 * i * i, 0.0});
  }
  std::vector<Vec3d> acc(6);
  topo.accumulate_forces(pos, PeriodicBox(50), 1.0, acc);
  Vec3d net{};
  for (const auto& a : acc) net += a;
  EXPECT_NEAR(length(net), 0.0, 1e-12);
}

TEST(BondTopology, BondsWorkAcrossPeriodicBoundary) {
  BondTopology topo;
  topo.add_bond({0, 1, 2.0, 0.5});
  // True separation through the boundary: 0.6.
  std::vector<Vec3d> pos = {{0.2, 0, 0}, {9.6, 0, 0}};
  std::vector<Vec3d> acc(2);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(10), 1.0, acc);
  EXPECT_NEAR(pe, 0.5 * 2.0 * 0.1 * 0.1, 1e-12);
}

TEST(BondTopology, MassScalesAcceleration) {
  BondTopology topo;
  topo.add_bond({0, 1, 4.0, 1.0});
  std::vector<Vec3d> pos = {{0, 0, 0}, {2, 0, 0}};
  std::vector<Vec3d> acc1(2), acc2(2);
  topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc1);
  topo.accumulate_forces(pos, PeriodicBox(20), 2.0, acc2);
  EXPECT_NEAR(acc2[0].x, 0.5 * acc1[0].x, 1e-12);
}

TEST(BondTopology, OutOfRangeAtomIndexThrows) {
  BondTopology topo;
  topo.add_bond({0, 5, 1.0, 1.0});
  std::vector<Vec3d> pos(2);
  std::vector<Vec3d> acc(2);
  EXPECT_THROW(topo.accumulate_forces(pos, PeriodicBox(10), 1.0, acc),
               ContractViolation);
}

TEST(BondTopology, MismatchedAccelerationArrayThrows) {
  BondTopology topo;
  topo.add_bond({0, 1, 1.0, 1.0});
  std::vector<Vec3d> pos(2);
  std::vector<Vec3d> acc(1);
  EXPECT_THROW(topo.accumulate_forces(pos, PeriodicBox(10), 1.0, acc),
               ContractViolation);
}

}  // namespace
}  // namespace emdpa::md
