#include <gtest/gtest.h>

#include "core/error.h"
#include "core/random.h"
#include "md/box.h"

namespace emdpa::md {
namespace {

TEST(PeriodicBox, RejectsNonPositiveEdge) {
  EXPECT_THROW(PeriodicBox(0.0), ContractViolation);
  EXPECT_THROW(PeriodicBox(-1.0), ContractViolation);
}

TEST(PeriodicBox, BasicGeometry) {
  PeriodicBox box(4.0);
  EXPECT_DOUBLE_EQ(box.edge(), 4.0);
  EXPECT_DOUBLE_EQ(box.half_edge(), 2.0);
  EXPECT_DOUBLE_EQ(box.volume(), 64.0);
}

TEST(PeriodicBox, WrapPutsPointsInPrimaryBox) {
  PeriodicBox box(3.0);
  const Vec3d w = box.wrap({4.5, -0.5, 3.0});
  EXPECT_DOUBLE_EQ(w.x, 1.5);
  EXPECT_DOUBLE_EQ(w.y, 2.5);
  EXPECT_DOUBLE_EQ(w.z, 0.0);
}

TEST(PeriodicBox, WrapIsIdempotent) {
  PeriodicBox box(5.0);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const Vec3d p{rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)};
    const Vec3d w = box.wrap(p);
    EXPECT_EQ(box.wrap(w), w);
    EXPECT_GE(w.x, 0.0);
    EXPECT_LT(w.x, 5.0);
  }
}

TEST(PeriodicBox, MinImageIdentityInsideHalfBox) {
  PeriodicBox box(10.0);
  const Vec3d dr{1.0, -2.0, 4.9};
  EXPECT_EQ(box.min_image(dr), dr);
}

TEST(PeriodicBox, MinImageReflectsLargeSeparations) {
  PeriodicBox box(10.0);
  const Vec3d dr{6.0, -7.0, 0.0};
  const Vec3d m = box.min_image(dr);
  EXPECT_DOUBLE_EQ(m.x, -4.0);
  EXPECT_DOUBLE_EQ(m.y, 3.0);
  EXPECT_DOUBLE_EQ(m.z, 0.0);
}

TEST(PeriodicBox, MinImageNeverLongerThanHalfDiagonal) {
  PeriodicBox box(6.0);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec3d dr{rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-6, 6)};
    const Vec3d m = box.min_image(dr);
    EXPECT_LE(std::fabs(m.x), 3.0 + 1e-12);
    EXPECT_LE(std::fabs(m.y), 3.0 + 1e-12);
    EXPECT_LE(std::fabs(m.z), 3.0 + 1e-12);
  }
}

/// Property: all four minimum-image strategies agree for displacements of
/// wrapped positions (the domain the kernels use them in).
class MinImageStrategyAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinImageStrategyAgreement, AllStrategiesAgreeOnWrappedDisplacements) {
  PeriodicBox box(7.3);
  Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    // dr = difference of two wrapped positions: in (-edge, edge).
    const Vec3d a = box.wrap({rng.uniform(0, 7.3), rng.uniform(0, 7.3),
                              rng.uniform(0, 7.3)});
    const Vec3d b = box.wrap({rng.uniform(0, 7.3), rng.uniform(0, 7.3),
                              rng.uniform(0, 7.3)});
    const Vec3d dr = a - b;

    const Vec3d round = box.min_image(dr);
    const Vec3d branchy = box.min_image_branchy(dr);
    const Vec3d copysign = box.min_image_copysign(dr);
    const Vec3d search = box.min_image_search27(dr);

    EXPECT_NEAR(round.x, branchy.x, 1e-12);
    EXPECT_NEAR(round.y, branchy.y, 1e-12);
    EXPECT_NEAR(round.z, branchy.z, 1e-12);
    EXPECT_NEAR(round.x, copysign.x, 1e-12);
    EXPECT_NEAR(round.y, copysign.y, 1e-12);
    EXPECT_NEAR(round.z, copysign.z, 1e-12);
    EXPECT_NEAR(round.x, search.x, 1e-12);
    EXPECT_NEAR(round.y, search.y, 1e-12);
    EXPECT_NEAR(round.z, search.z, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinImageStrategyAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

TEST(PeriodicBox, Search27HandlesArbitrarySeparationsWithinOneBox) {
  PeriodicBox box(4.0);
  // Separation beyond half the box in every axis.
  const Vec3d dr{3.9, -3.9, 2.1};
  const Vec3d s = box.min_image_search27(dr);
  EXPECT_NEAR(s.x, -0.1, 1e-12);
  EXPECT_NEAR(s.y, 0.1, 1e-12);
  EXPECT_NEAR(s.z, -1.9, 1e-12);
}

TEST(PeriodicBox, SinglePrecisionInstantiation) {
  PeriodicBoxF box(4.0f);
  const Vec3f m = box.min_image({3.0f, 0.0f, -3.0f});
  EXPECT_FLOAT_EQ(m.x, -1.0f);
  EXPECT_FLOAT_EQ(m.z, 1.0f);
}

TEST(PeriodicBox, MinImagePreservesLengthOrShortens) {
  PeriodicBox box(5.0);
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    const Vec3d dr{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_LE(length_squared(box.min_image(dr)), length_squared(dr) + 1e-12);
  }
}

}  // namespace
}  // namespace emdpa::md
