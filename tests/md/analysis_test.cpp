#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "md/analysis.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

TEST(RadialDistribution, ValidatesConstruction) {
  EXPECT_THROW(RadialDistribution(0, 1.0), ContractViolation);
  EXPECT_THROW(RadialDistribution(10, 0.0), ContractViolation);
}

TEST(RadialDistribution, EmptyHistogramIsZero) {
  RadialDistribution rdf(10, 2.0);
  for (double g : rdf.normalized()) EXPECT_EQ(g, 0.0);
  EXPECT_EQ(rdf.snapshots(), 0u);
}

TEST(RadialDistribution, BinCenters) {
  RadialDistribution rdf(4, 2.0);
  EXPECT_DOUBLE_EQ(rdf.bin_center(0), 0.25);
  EXPECT_DOUBLE_EQ(rdf.bin_center(3), 1.75);
}

TEST(RadialDistribution, IdealGasIsFlatAroundOne) {
  // Uniform random positions: g(r) ~ 1 for r comfortably below r_max.
  WorkloadSpec spec;
  spec.n_atoms = 400;
  spec.density = 0.5;
  spec.seed = 7;
  Workload w = make_random_gas_workload(spec, 0.0);
  RadialDistribution rdf(20, w.box.half_edge());
  rdf.accumulate(w.system, w.box);

  const auto g = rdf.normalized();
  // Skip the first bins (few counts) and check the bulk.
  for (std::size_t b = 5; b < g.size(); ++b) {
    EXPECT_NEAR(g[b], 1.0, 0.35) << "bin " << b;
  }
}

TEST(RadialDistribution, LatticeShowsSharpShellStructure) {
  WorkloadSpec spec;
  spec.n_atoms = 512;  // 8^3 exact lattice
  spec.temperature = 0.0;
  Workload w = make_lattice_workload(spec);
  const double spacing = w.box.edge() / 8.0;

  RadialDistribution rdf(300, w.box.half_edge());
  rdf.accumulate(w.system, w.box);
  const auto g = rdf.normalized();
  const double bin_width = w.box.half_edge() / 300;

  // Nothing below the first shell…
  for (std::size_t b = 0; rdf.bin_center(b) < 0.9 * spacing; ++b) {
    EXPECT_EQ(g[b], 0.0) << "bin " << b;
  }
  // …and a sharp delta-like peak at the nearest-neighbour distance.
  const auto first_shell_bin = static_cast<std::size_t>(spacing / bin_width);
  double near_peak = 0.0;
  for (std::size_t b = first_shell_bin - 1; b <= first_shell_bin + 1; ++b) {
    near_peak = std::max(near_peak, g[b]);
  }
  EXPECT_GT(near_peak, 10.0);
}

TEST(RadialDistribution, NormalisationCountsEveryPairOnce) {
  // Two atoms at a known separation: exactly one bin is populated.
  ParticleSystem ps(2);
  ps.positions()[0] = {1, 1, 1};
  ps.positions()[1] = {2, 1, 1};
  PeriodicBox box(10);
  RadialDistribution rdf(100, 5.0);
  rdf.accumulate(ps, box);
  const auto g = rdf.normalized();
  int populated = 0;
  for (double v : g) populated += (v > 0);
  EXPECT_EQ(populated, 1);
}

TEST(RadialDistribution, RejectsChangingAtomCounts) {
  ParticleSystem a(4), b(5);
  PeriodicBox box(10);
  RadialDistribution rdf(10, 5.0);
  rdf.accumulate(a, box);
  EXPECT_THROW(rdf.accumulate(b, box), ContractViolation);
}

TEST(MeanSquaredDisplacement, ZeroForStaticSystem) {
  ParticleSystem ps(3);
  ps.positions() = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  MeanSquaredDisplacement msd(ps.positions(), PeriodicBox(10));
  msd.update(ps);
  EXPECT_DOUBLE_EQ(msd.value(), 0.0);
}

TEST(MeanSquaredDisplacement, TracksSimpleDisplacement) {
  ParticleSystem ps(1);
  ps.positions() = {{5, 5, 5}};
  MeanSquaredDisplacement msd(ps.positions(), PeriodicBox(10));
  ps.positions()[0] = {6, 5, 5};
  msd.update(ps);
  EXPECT_DOUBLE_EQ(msd.value(), 1.0);
  ps.positions()[0] = {6, 7, 5};
  msd.update(ps);
  EXPECT_DOUBLE_EQ(msd.value(), 1.0 + 4.0);
}

TEST(MeanSquaredDisplacement, UnwrapsBoundaryCrossings) {
  // Atom walks +0.8 per update in x across the boundary of a 4-box: after 10
  // updates it has moved 8.0, far beyond the box edge.
  ParticleSystem ps(1);
  ps.positions() = {{3.9, 0, 0}};
  PeriodicBox box(4.0);
  MeanSquaredDisplacement msd({{3.9, 0, 0}}, box);
  double x = 3.9;
  for (int k = 0; k < 10; ++k) {
    x += 0.8;
    ps.positions()[0] = box.wrap({x, 0, 0});
    msd.update(ps);
  }
  EXPECT_NEAR(msd.value(), 64.0, 1e-9);
}

TEST(MeanSquaredDisplacement, RejectsAtomCountChange) {
  ParticleSystem a(2), b(3);
  MeanSquaredDisplacement msd(a.positions(), PeriodicBox(10));
  EXPECT_THROW(msd.update(b), ContractViolation);
}

TEST(VelocityAutocorrelation, OneAtStart) {
  ParticleSystem ps(2);
  ps.velocities() = {{1, 0, 0}, {0, 2, 0}};
  EXPECT_DOUBLE_EQ(velocity_autocorrelation(ps.velocities(), ps), 1.0);
}

TEST(VelocityAutocorrelation, MinusOneWhenReversed) {
  ParticleSystem ps(2);
  const std::vector<Vec3d> v0 = {{1, 0, 0}, {0, 2, 0}};
  ps.velocities() = {{-1, 0, 0}, {0, -2, 0}};
  EXPECT_DOUBLE_EQ(velocity_autocorrelation(v0, ps), -1.0);
}

TEST(VelocityAutocorrelation, ZeroWhenOrthogonal) {
  ParticleSystem ps(1);
  const std::vector<Vec3d> v0 = {{1, 0, 0}};
  ps.velocities() = {{0, 1, 0}};
  EXPECT_DOUBLE_EQ(velocity_autocorrelation(v0, ps), 0.0);
}

TEST(VelocityAutocorrelation, RejectsZeroReference) {
  ParticleSystem ps(1);
  EXPECT_THROW(velocity_autocorrelation({{0, 0, 0}}, ps), ContractViolation);
}

}  // namespace
}  // namespace emdpa::md
