// HealthMonitor: the numerical-health watchdog raising typed
// NumericalFailure with step/kernel context.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/error.h"
#include "md/health.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

ParticleSystem healthy_system() {
  WorkloadSpec spec;
  spec.n_atoms = 27;
  Workload w = make_lattice_workload(spec);
  return std::move(w.system);
}

StepEnergies energies(double kinetic, double potential) {
  return {kinetic, potential};
}

TEST(HealthPolicy, RejectsNonPositiveKnobs) {
  HealthPolicy bad_interval;
  bad_interval.check_every = 0;
  EXPECT_THROW(HealthMonitor{bad_interval}, ContractViolation);

  HealthPolicy bad_drift;
  bad_drift.max_energy_drift = -0.1;
  EXPECT_THROW(HealthMonitor{bad_drift}, ContractViolation);

  HealthPolicy bad_displacement;
  bad_displacement.max_step_displacement = 0.0;
  EXPECT_THROW(HealthMonitor{bad_displacement}, ContractViolation);
}

TEST(HealthMonitor, DueFollowsCheckInterval) {
  HealthPolicy policy;
  policy.check_every = 10;
  HealthMonitor monitor(policy);
  EXPECT_FALSE(monitor.due(1));
  EXPECT_FALSE(monitor.due(9));
  EXPECT_TRUE(monitor.due(10));
  EXPECT_FALSE(monitor.due(11));
  EXPECT_TRUE(monitor.due(20));
}

TEST(HealthMonitor, HealthyStatePasses) {
  HealthMonitor monitor(HealthPolicy{});
  const ParticleSystem system = healthy_system();
  monitor.reset_baseline(energies(1.0, -5.0));
  EXPECT_NO_THROW(monitor.check(10, system, energies(1.0, -5.0), 0.005,
                                "reference", /*conserves_energy=*/true));
  EXPECT_EQ(monitor.checks_run(), 1u);
}

TEST(HealthMonitor, DetectsNonFinitePositionWithContext) {
  HealthMonitor monitor(HealthPolicy{});
  ParticleSystem system = healthy_system();
  system.positions()[3].y = kNan;
  try {
    monitor.check(40, system, energies(1.0, -5.0), 0.005, "neighbor-list",
                  true);
    FAIL() << "NaN position must trip the watchdog";
  } catch (const NumericalFailure& e) {
    EXPECT_NE(std::string(e.what()).find("atom 3"), std::string::npos);
    const ErrorContext* ctx = error_context(e);
    ASSERT_NE(ctx, nullptr);
    EXPECT_EQ(ctx->step, 40);
    EXPECT_EQ(ctx->kernel, "neighbor-list");
  }
}

TEST(HealthMonitor, DetectsNonFiniteVelocityAndForce) {
  HealthMonitor monitor(HealthPolicy{});
  ParticleSystem with_velocity = healthy_system();
  with_velocity.velocities()[0].x = kInf;
  EXPECT_THROW(
      monitor.check(10, with_velocity, energies(1.0, -5.0), 0.005, "k", true),
      NumericalFailure);

  ParticleSystem with_force = healthy_system();
  with_force.accelerations()[5].z = kNan;
  EXPECT_THROW(
      monitor.check(10, with_force, energies(1.0, -5.0), 0.005, "k", true),
      NumericalFailure);
}

TEST(HealthMonitor, DetectsNonFiniteTotalEnergy) {
  HealthMonitor monitor(HealthPolicy{});
  const ParticleSystem system = healthy_system();
  EXPECT_THROW(monitor.check(10, system, energies(kNan, 0.0), 0.005, "k", true),
               NumericalFailure);
}

TEST(HealthMonitor, FiniteCheckCanBeDisabled) {
  HealthPolicy policy;
  policy.check_finite = false;
  HealthMonitor monitor(policy);
  ParticleSystem system = healthy_system();
  system.positions()[0].x = kNan;
  EXPECT_NO_THROW(
      monitor.check(10, system, energies(1.0, -5.0), 0.005, "k", true));
}

TEST(HealthMonitor, DetectsDisplacementExplosion) {
  HealthMonitor monitor(HealthPolicy{});  // limit 0.5 per step
  ParticleSystem system = healthy_system();
  system.velocities()[7] = {500.0, 0.0, 0.0};  // 2.5 units per 0.005 step
  try {
    monitor.check(10, system, energies(1.0, -5.0), 0.005, "soa-n2", true);
    FAIL() << "an exploding atom must trip the displacement check";
  } catch (const NumericalFailure& e) {
    EXPECT_NE(std::string(e.what()).find("displacement"), std::string::npos);
  }
}

TEST(HealthMonitor, DetectsEnergyDrift) {
  HealthMonitor monitor(HealthPolicy{});  // relative tolerance 0.05
  const ParticleSystem system = healthy_system();
  monitor.reset_baseline(energies(1.0, -5.0));  // total -4
  try {
    monitor.check(10, system, energies(1.5, -5.0), 0.005, "reference", true);
    FAIL() << "12% drift must exceed the 5% tolerance";
  } catch (const NumericalFailure& e) {
    EXPECT_NE(std::string(e.what()).find("drift"), std::string::npos);
  }
}

TEST(HealthMonitor, SmallDriftWithinToleranceIsHealthy) {
  HealthMonitor monitor(HealthPolicy{});
  const ParticleSystem system = healthy_system();
  monitor.reset_baseline(energies(1.0, -5.0));
  EXPECT_NO_THROW(
      monitor.check(10, system, energies(1.1, -5.0), 0.005, "reference", true));
}

TEST(HealthMonitor, DriftCheckSkippedWhenThermostatted) {
  // A thermostat pumps energy on purpose; only conservative runs are held to
  // the drift tolerance.
  HealthMonitor monitor(HealthPolicy{});
  const ParticleSystem system = healthy_system();
  monitor.reset_baseline(energies(1.0, -5.0));
  EXPECT_NO_THROW(monitor.check(10, system, energies(9.0, -5.0), 0.005,
                                "reference", /*conserves_energy=*/false));
}

TEST(HealthMonitor, ResetBaselineForgivesPriorDrift) {
  HealthMonitor monitor(HealthPolicy{});
  const ParticleSystem system = healthy_system();
  monitor.reset_baseline(energies(1.0, -5.0));
  monitor.reset_baseline(energies(2.0, -5.0));  // e.g. after a kernel swap
  EXPECT_NO_THROW(
      monitor.check(10, system, energies(2.0, -5.0), 0.005, "reference", true));
}

TEST(StateIsFinite, FlagsEachArray) {
  EXPECT_TRUE(state_is_finite(healthy_system()));
  ParticleSystem p = healthy_system();
  p.positions()[0].x = kInf;
  EXPECT_FALSE(state_is_finite(p));
  ParticleSystem v = healthy_system();
  v.velocities()[1].y = kNan;
  EXPECT_FALSE(state_is_finite(v));
  ParticleSystem a = healthy_system();
  a.accelerations()[2].z = kNan;
  EXPECT_FALSE(state_is_finite(a));
}

}  // namespace
}  // namespace emdpa::md
