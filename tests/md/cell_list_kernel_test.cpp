#include <gtest/gtest.h>

#include <cmath>

#include "md/cell_list_kernel.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

namespace emdpa::md {
namespace {

/// The cell-list kernel must reproduce the N^2 kernel exactly — same pairs,
/// same forces, same PE — on any configuration.
class CellListAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellListAgreement, MatchesReferenceOnLattice) {
  WorkloadSpec spec;
  spec.n_atoms = GetParam();
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  ReferenceKernel ref;
  CellListKernel cells;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = cells.compute(w.system.positions(), w.box, lj, 1.0);

  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(a.potential_energy, b.potential_energy,
              1e-9 * std::fabs(a.potential_energy));
  for (std::size_t i = 0; i < a.accelerations.size(); ++i) {
    EXPECT_NEAR(a.accelerations[i].x, b.accelerations[i].x, 1e-9);
    EXPECT_NEAR(a.accelerations[i].y, b.accelerations[i].y, 1e-9);
    EXPECT_NEAR(a.accelerations[i].z, b.accelerations[i].z, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AtomCounts, CellListAgreement,
                         ::testing::Values(32, 64, 128, 256, 500));

TEST(CellListKernel, MatchesReferenceOnRandomGas) {
  WorkloadSpec spec;
  spec.n_atoms = 100;
  spec.density = 0.5;
  Workload w = make_random_gas_workload(spec, 0.8);
  LjParams lj;

  ReferenceKernel ref;
  CellListKernel cells;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = cells.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-9);
}

TEST(CellListKernel, DegenerateSmallBoxFallsBackCorrectly) {
  // Box smaller than 3 cutoffs: the kernel must still match the reference.
  WorkloadSpec spec;
  spec.n_atoms = 27;  // edge ~ 3.2 at rho 0.8442 < 3 * 2.5
  Workload w = make_lattice_workload(spec);
  LjParams lj;
  lj.cutoff = 1.5;  // keep cutoff < edge/2 so min-image is well defined

  ReferenceKernel ref;
  CellListKernel cells;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = cells.compute(w.system.positions(), w.box, lj, 1.0);
  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-10);
}

TEST(CellListKernel, ExaminesFarFewerCandidatesAtScale) {
  // Needs >= 5 cells per axis before the 27-cell neighbourhood is a small
  // fraction of the box; at this density that means a few thousand atoms.
  WorkloadSpec spec;
  spec.n_atoms = 2048;
  Workload w = make_lattice_workload(spec);
  LjParams lj;

  ReferenceKernel ref;
  CellListKernel cells;
  const auto a = ref.compute(w.system.positions(), w.box, lj, 1.0);
  const auto b = cells.compute(w.system.positions(), w.box, lj, 1.0);
  // The point of the technique: candidate tests shrink dramatically.
  EXPECT_LT(b.stats.candidates, a.stats.candidates / 2);
}

TEST(CellListKernel, HandlesUnwrappedPositions) {
  LjParams lj;
  CellListKernel cells;
  ReferenceKernel ref;
  std::vector<Vec3d> pos = {{-0.5, 5, 5}, {9.8, 5, 5}, {4.0, 5.0, 5.0}};
  PeriodicBox box(10);
  const auto a = ref.compute(pos, box, lj, 1.0);
  const auto b = cells.compute(pos, box, lj, 1.0);
  EXPECT_EQ(a.stats.interacting, b.stats.interacting);
  EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-10);
}

TEST(CellListKernel, Name) {
  EXPECT_EQ(CellListKernel().name(), "cell-list");
}

}  // namespace
}  // namespace emdpa::md
