#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/error.h"
#include "md/angles.h"

namespace emdpa::md {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(AngleTopology, Validation) {
  AngleTopology topo;
  EXPECT_THROW(topo.add_angle({0, 0, 1, 1.0, kPi}), ContractViolation);
  EXPECT_THROW(topo.add_angle({0, 1, 1, 1.0, kPi}), ContractViolation);
  EXPECT_THROW(topo.add_angle({0, 1, 0, 1.0, kPi}), ContractViolation);
  EXPECT_THROW(topo.add_angle({0, 1, 2, -1.0, kPi}), ContractViolation);
  EXPECT_THROW(topo.add_angle({0, 1, 2, 1.0, 0.0}), ContractViolation);
  EXPECT_THROW(topo.add_angle({0, 1, 2, 1.0, 4.0}), ContractViolation);
}

TEST(AngleTopology, ChainAnglesCountAndShape) {
  const auto topo = AngleTopology::chain_angles(6, 2.0, kPi);
  EXPECT_EQ(topo.size(), 4u);
  EXPECT_EQ(topo.angles()[0].j, 1u);  // vertex is the middle atom
  EXPECT_EQ(topo.angles()[3].i, 3u);
  EXPECT_EQ(topo.angles()[3].k, 5u);
}

TEST(AngleTopology, AtRestAngleNoForceNoEnergy) {
  AngleTopology topo;
  topo.add_angle({0, 1, 2, 5.0, kPi / 2});
  // Right angle at atom 1.
  std::vector<Vec3d> pos = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0}};
  std::vector<Vec3d> acc(3);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc);
  EXPECT_NEAR(pe, 0.0, 1e-14);
  for (const auto& a : acc) EXPECT_NEAR(length(a), 0.0, 1e-12);
}

TEST(AngleTopology, BentAngleStoresHarmonicEnergy) {
  AngleTopology topo;
  topo.add_angle({0, 1, 2, 4.0, kPi});  // wants straight
  // 90-degree bend: delta = pi/2.
  std::vector<Vec3d> pos = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0}};
  std::vector<Vec3d> acc(3);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc);
  EXPECT_NEAR(pe, 0.5 * 4.0 * (kPi / 2) * (kPi / 2), 1e-12);
}

TEST(AngleTopology, ForcesMatchNumericalGradient) {
  AngleTopology topo;
  topo.add_angle({0, 1, 2, 3.0, 2.0});
  std::vector<Vec3d> pos = {{1.2, 0.1, -0.3}, {0, 0, 0}, {-0.4, 1.1, 0.2}};
  PeriodicBox box(50);

  std::vector<Vec3d> acc(3);
  topo.accumulate_forces(pos, box, 1.0, acc);

  const double h = 1e-7;
  for (std::size_t atom = 0; atom < 3; ++atom) {
    for (int axis = 0; axis < 3; ++axis) {
      auto perturbed = pos;
      double* coord = axis == 0 ? &perturbed[atom].x
                     : axis == 1 ? &perturbed[atom].y
                                 : &perturbed[atom].z;
      std::vector<Vec3d> scratch(3);
      *coord += h;
      const double e_plus = topo.accumulate_forces(perturbed, box, 1.0, scratch);
      *coord -= 2 * h;
      const double e_minus = topo.accumulate_forces(perturbed, box, 1.0, scratch);
      const double grad = (e_plus - e_minus) / (2 * h);
      const double force = axis == 0 ? acc[atom].x
                           : axis == 1 ? acc[atom].y
                                       : acc[atom].z;
      EXPECT_NEAR(force, -grad, 1e-5) << "atom " << atom << " axis " << axis;
    }
  }
}

TEST(AngleTopology, NetForceAndTorqueFreeInternally) {
  AngleTopology topo;
  topo.add_angle({0, 1, 2, 2.5, 1.8});
  std::vector<Vec3d> pos = {{1, 0.2, 0}, {0, 0, 0}, {-0.3, 1.4, 0.5}};
  std::vector<Vec3d> acc(3);
  topo.accumulate_forces(pos, PeriodicBox(50), 1.0, acc);
  Vec3d net{};
  for (const auto& a : acc) net += a;
  EXPECT_NEAR(length(net), 0.0, 1e-12);
}

TEST(AngleTopology, WorksAcrossPeriodicBoundary) {
  AngleTopology topo;
  topo.add_angle({0, 1, 2, 4.0, kPi});
  // Straight chain through the boundary of a 10-box: x = 9.5, 0.5, 1.5.
  std::vector<Vec3d> pos = {{9.5, 5, 5}, {0.5, 5, 5}, {1.5, 5, 5}};
  std::vector<Vec3d> acc(3);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(10), 1.0, acc);
  EXPECT_NEAR(pe, 0.0, 1e-12);  // straight = at rest angle pi
}

TEST(AngleTopology, CollinearDegenerateGeometrySkipsForce) {
  AngleTopology topo;
  topo.add_angle({0, 1, 2, 4.0, kPi / 2});
  // Perfectly straight but rest angle pi/2: energy yes, force undefined ->
  // skipped rather than NaN.
  std::vector<Vec3d> pos = {{1, 0, 0}, {0, 0, 0}, {-1, 0, 0}};
  std::vector<Vec3d> acc(3);
  const double pe = topo.accumulate_forces(pos, PeriodicBox(20), 1.0, acc);
  EXPECT_GT(pe, 0.0);
  for (const auto& a : acc) {
    EXPECT_TRUE(std::isfinite(a.x) && std::isfinite(a.y) && std::isfinite(a.z));
  }
}

TEST(AngleTopology, OutOfRangeAtomThrows) {
  AngleTopology topo;
  topo.add_angle({0, 1, 9, 1.0, kPi});
  std::vector<Vec3d> pos(3);
  std::vector<Vec3d> acc(3);
  EXPECT_THROW(topo.accumulate_forces(pos, PeriodicBox(10), 1.0, acc),
               ContractViolation);
}

}  // namespace
}  // namespace emdpa::md
