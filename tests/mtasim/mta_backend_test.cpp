#include <gtest/gtest.h>

#include <cmath>

#include "md/backend.h"
#include "mtasim/mta_backend.h"

namespace emdpa::mta {
namespace {

md::RunConfig small_config(std::size_t n = 128, int steps = 3) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(MtaBackend, NamesAndPrecision) {
  EXPECT_EQ(MtaBackend(ThreadingMode::kFullyMultithreaded).name(),
            "mta2[fully-multithreaded]");
  EXPECT_EQ(MtaBackend(ThreadingMode::kPartiallyMultithreaded).name(),
            "mta2[partially-multithreaded]");
  EXPECT_EQ(MtaBackend().precision(), "double");
}

TEST(MtaBackend, PhysicsMatchesHostReferenceExactly) {
  // Same double-precision arithmetic as the host reference.
  const auto cfg = small_config(128, 4);
  const auto a = MtaBackend().run(cfg);
  const auto b = md::HostReferenceBackend().run(cfg);
  for (std::size_t s = 0; s < a.energies.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.energies[s].potential, b.energies[s].potential);
    EXPECT_DOUBLE_EQ(a.energies[s].kinetic, b.energies[s].kinetic);
  }
  for (std::size_t i = 0; i < a.final_state.size(); ++i) {
    EXPECT_EQ(a.final_state.positions()[i], b.final_state.positions()[i]);
  }
}

TEST(MtaBackend, BothModesIdenticalPhysics) {
  const auto cfg = small_config(128, 3);
  const auto full = MtaBackend(ThreadingMode::kFullyMultithreaded).run(cfg);
  const auto part = MtaBackend(ThreadingMode::kPartiallyMultithreaded).run(cfg);
  for (std::size_t i = 0; i < full.final_state.size(); ++i) {
    EXPECT_EQ(full.final_state.positions()[i], part.final_state.positions()[i]);
  }
}

TEST(MtaBackend, PartialModeIsAboutPipelineDepthSlower) {
  const auto cfg = small_config(256, 2);
  const auto full = MtaBackend(ThreadingMode::kFullyMultithreaded).run(cfg);
  const auto part = MtaBackend(ThreadingMode::kPartiallyMultithreaded).run(cfg);
  const double ratio = part.device_time / full.device_time;
  // Step 2 dominates and runs 21x slower serially; the parallel remainder
  // dilutes slightly.
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 21.5);
}

TEST(MtaBackend, AbsoluteGapGrowsWithAtoms) {
  const auto small_gap = [] {
    const auto cfg = small_config(128, 2);
    return MtaBackend(ThreadingMode::kPartiallyMultithreaded).run(cfg).device_time -
           MtaBackend(ThreadingMode::kFullyMultithreaded).run(cfg).device_time;
  }();
  const auto big_gap = [] {
    const auto cfg = small_config(512, 2);
    return MtaBackend(ThreadingMode::kPartiallyMultithreaded).run(cfg).device_time -
           MtaBackend(ThreadingMode::kFullyMultithreaded).run(cfg).device_time;
  }();
  EXPECT_GT(big_gap.to_seconds(), 8.0 * small_gap.to_seconds());
}

TEST(MtaBackend, RuntimeScalesWithFlopCountNotCache) {
  // The MTA claim of Fig 9: runtime ratio tracks pair-work ratio.
  const auto t1 = MtaBackend().run(small_config(256, 2)).device_time;
  const auto t2 = MtaBackend().run(small_config(1024, 2)).device_time;
  const double work_ratio =
      (1024.0 * 1023.0) / (256.0 * 255.0);  // candidate pairs
  EXPECT_NEAR(t2 / t1, work_ratio, 0.1 * work_ratio);
}

TEST(MtaBackend, OpsRecordParallelizationDecision) {
  const auto full = MtaBackend(ThreadingMode::kFullyMultithreaded)
                        .run(small_config(64, 1));
  EXPECT_EQ(full.ops.get("mta.force_loop_parallel"), 1u);
  EXPECT_EQ(full.ops.get("mta.force_loop_serial"), 0u);

  const auto part = MtaBackend(ThreadingMode::kPartiallyMultithreaded)
                        .run(small_config(64, 1));
  EXPECT_EQ(part.ops.get("mta.force_loop_serial"), 1u);
}

TEST(MtaBackend, FullModeUsesFeAccumulator) {
  const auto r = MtaBackend().run(small_config(64, 2));
  EXPECT_GT(r.ops.get("mta.fe_operations"), 0u);
  const auto p = MtaBackend(ThreadingMode::kPartiallyMultithreaded)
                     .run(small_config(64, 2));
  EXPECT_EQ(p.ops.get("mta.fe_operations"), 0u);
}

TEST(MtaBackend, BreakdownDominatedByForceLoop) {
  const auto r = MtaBackend().run(small_config(256, 2));
  EXPECT_GT(r.breakdown_component("force_loop").to_seconds(),
            10.0 * r.breakdown_component("other_loops").to_seconds());
}

TEST(MtaBackend, StepTimesMatchDeviceTime) {
  const auto r = MtaBackend().run(small_config(128, 3));
  ModelTime sum;
  for (const auto& t : r.step_times) sum += t;
  EXPECT_NEAR(sum.to_seconds(), r.device_time.to_seconds(), 1e-12);
}

}  // namespace
}  // namespace emdpa::mta
