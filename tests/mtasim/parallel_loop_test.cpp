#include <gtest/gtest.h>

#include "mtasim/mta_backend.h"
#include "mtasim/parallel_loop.h"

namespace emdpa::mta {
namespace {

LoopDescription plain_loop() {
  LoopDescription loop;
  loop.name = "plain";
  loop.trip_count = 1000;
  return loop;
}

TEST(MtaCompiler, PlainLoopParallelizes) {
  const auto d = MtaCompiler::analyze(plain_loop());
  EXPECT_TRUE(d.parallel);
}

TEST(MtaCompiler, ScalarReductionBlocksParallelization) {
  // The paper's exact situation: "it found a dependency on the reduction
  // operation".
  LoopDescription loop = plain_loop();
  loop.has_scalar_reduction = true;
  const auto d = MtaCompiler::analyze(loop);
  EXPECT_FALSE(d.parallel);
  EXPECT_NE(d.reason.find("reduction"), std::string::npos);
}

TEST(MtaCompiler, RestructuredReductionAloneIsNotEnough) {
  LoopDescription loop = plain_loop();
  loop.has_scalar_reduction = true;
  loop.reduction_inside_body = true;
  EXPECT_FALSE(MtaCompiler::analyze(loop).parallel);
}

TEST(MtaCompiler, PragmaAloneIsNotEnough) {
  // The pragma asserts no dependence, but an un-restructured reduction still
  // straddles iterations.
  LoopDescription loop = plain_loop();
  loop.has_scalar_reduction = true;
  loop.pragma_no_dependence = true;
  EXPECT_FALSE(MtaCompiler::analyze(loop).parallel);
}

TEST(MtaCompiler, RestructuredReductionPlusPragmaParallelizes) {
  // The paper's fix: reduction moved inside the loop body + MTA directive.
  LoopDescription loop = plain_loop();
  loop.has_scalar_reduction = true;
  loop.reduction_inside_body = true;
  loop.pragma_no_dependence = true;
  EXPECT_TRUE(MtaCompiler::analyze(loop).parallel);
}

TEST(MtaCompiler, UnanalyzableWriteBlocksWithoutPragma) {
  LoopDescription loop = plain_loop();
  loop.has_unanalyzable_write = true;
  EXPECT_FALSE(MtaCompiler::analyze(loop).parallel);
  loop.pragma_no_dependence = true;
  EXPECT_TRUE(MtaCompiler::analyze(loop).parallel);
}

TEST(MtaCompiler, ForceLoopDescriptionsMatchPaperNarrative) {
  const auto partial = MtaBackend::force_loop_description(
      ThreadingMode::kPartiallyMultithreaded, 2048);
  const auto full = MtaBackend::force_loop_description(
      ThreadingMode::kFullyMultithreaded, 2048);
  EXPECT_FALSE(MtaCompiler::analyze(partial).parallel);
  EXPECT_TRUE(MtaCompiler::analyze(full).parallel);
  EXPECT_EQ(partial.trip_count, 2048u);
}

}  // namespace
}  // namespace emdpa::mta
