#include <gtest/gtest.h>

#include "core/error.h"
#include "mtasim/full_empty.h"

namespace emdpa::mta {
namespace {

TEST(FullEmptyCell, StartsEmpty) {
  FullEmptyCell<int> cell;
  EXPECT_FALSE(cell.is_full());
}

TEST(FullEmptyCell, ValueConstructorStartsFull) {
  FullEmptyCell<int> cell(7);
  EXPECT_TRUE(cell.is_full());
  EXPECT_EQ(cell.read_ff(), 7);
}

TEST(FullEmptyCell, WriteEfThenReadFe) {
  FullEmptyCell<double> cell;
  cell.write_ef(3.5);
  EXPECT_TRUE(cell.is_full());
  EXPECT_EQ(cell.read_fe(), 3.5);
  EXPECT_FALSE(cell.is_full());
}

TEST(FullEmptyCell, DoubleWriteDeadlocks) {
  FullEmptyCell<int> cell;
  cell.write_ef(1);
  EXPECT_THROW(cell.write_ef(2), ContractViolation);
}

TEST(FullEmptyCell, ReadEmptyDeadlocks) {
  FullEmptyCell<int> cell;
  EXPECT_THROW(cell.read_fe(), ContractViolation);
  EXPECT_THROW(cell.read_ff(), ContractViolation);
}

TEST(FullEmptyCell, ReadFfLeavesFull) {
  FullEmptyCell<int> cell(5);
  EXPECT_EQ(cell.read_ff(), 5);
  EXPECT_TRUE(cell.is_full());
}

TEST(FullEmptyCell, FetchAddAccumulates) {
  FullEmptyCell<double> acc(0.0);
  for (int i = 1; i <= 10; ++i) acc.fetch_add(i);
  EXPECT_EQ(acc.read_ff(), 55.0);
  EXPECT_TRUE(acc.is_full());  // fetch_add restores full
}

TEST(FullEmptyCell, FetchAddOnEmptyDeadlocks) {
  FullEmptyCell<double> acc;
  EXPECT_THROW(acc.fetch_add(1.0), ContractViolation);
}

TEST(FullEmptyCell, PurgeForcesEmpty) {
  FullEmptyCell<int> cell(1);
  cell.purge();
  EXPECT_FALSE(cell.is_full());
  EXPECT_NO_THROW(cell.write_ef(2));
}

TEST(FullEmptyCell, ProducerConsumerHandoff) {
  FullEmptyCell<int> cell;
  // Producer/consumer alternation: classic MTA pipeline pattern.
  for (int round = 0; round < 5; ++round) {
    cell.write_ef(round);
    EXPECT_EQ(cell.read_fe(), round);
  }
}

}  // namespace
}  // namespace emdpa::mta
