#include <gtest/gtest.h>

#include "core/error.h"
#include "mtasim/stream_machine.h"

namespace emdpa::mta {
namespace {

TEST(StreamMachine, ValidatesConfig) {
  MtaConfig bad;
  bad.clock_hz = 0;
  EXPECT_THROW(StreamMachine{bad}, ContractViolation);
  bad = MtaConfig{};
  bad.n_processors = 0;
  EXPECT_THROW(StreamMachine{bad}, ContractViolation);
  bad = MtaConfig{};
  bad.pipeline_depth = 0.5;
  EXPECT_THROW(StreamMachine{bad}, ContractViolation);
}

TEST(StreamMachine, SaturatedParallelIssuesOnePerCycle) {
  StreamMachine machine;  // 200 MHz
  // 2e8 instructions with plenty of threads: exactly one second.
  const ModelTime t = machine.charge_parallel(2.0e8, 128);
  EXPECT_NEAR(t.to_seconds(), 1.0, 1e-9);
}

TEST(StreamMachine, SerialPaysPipelineDepthPerInstruction) {
  StreamMachine machine;
  const ModelTime serial = machine.charge_serial(2.0e8);
  EXPECT_NEAR(serial.to_seconds(), 21.0, 1e-9);
}

TEST(StreamMachine, SerialToParallelRatioIsPipelineDepth) {
  StreamMachine a, b;
  const ModelTime par = a.charge_parallel(1e6, 128);
  const ModelTime ser = b.charge_serial(1e6);
  EXPECT_NEAR(ser / par, 21.0, 1e-9);
}

TEST(StreamMachine, UndersubscribedLoopRampsLinearly) {
  StreamMachine machine;
  // 7 threads on a 21-deep pipeline: one third of full issue rate.
  const ModelTime t7 = machine.charge_parallel(1e6, 7);
  StreamMachine other;
  const ModelTime t21 = other.charge_parallel(1e6, 21);
  EXPECT_NEAR(t7 / t21, 3.0, 1e-9);
}

TEST(StreamMachine, ThreadsBeyondHardwareStreamsDontHelp) {
  StreamMachine a, b;
  const ModelTime t128 = a.charge_parallel(1e6, 128);
  const ModelTime t1M = b.charge_parallel(1e6, 1u << 20);
  EXPECT_EQ(t128, t1M);
}

TEST(StreamMachine, MultipleProcessorsScaleSaturatedWork) {
  MtaConfig cfg;
  cfg.n_processors = 4;
  StreamMachine quad(cfg);
  StreamMachine single;
  const ModelTime t4 = quad.charge_parallel(1e6, 4 * 128);
  const ModelTime t1 = single.charge_parallel(1e6, 128);
  EXPECT_NEAR(t1 / t4, 4.0, 1e-9);
}

TEST(StreamMachine, ZeroWorkIsFree) {
  StreamMachine machine;
  EXPECT_EQ(machine.charge_parallel(0, 128), ModelTime::zero());
  EXPECT_EQ(machine.charge_parallel(100, 0), ModelTime::zero());
}

TEST(StreamMachine, ElapsedAccumulates) {
  StreamMachine machine;
  machine.charge_parallel(2e8, 128);
  machine.charge_serial(1e6);
  EXPECT_NEAR(machine.elapsed().to_seconds(), 1.0 + 0.105, 1e-6);
}

TEST(StreamMachine, FeOpsCharged) {
  StreamMachine machine;
  const ModelTime t = machine.charge_fe_ops(1000);
  EXPECT_NEAR(t.to_seconds(), 1000 * 8.0 / 200e6, 1e-12);
  EXPECT_EQ(machine.ops().get("mta.fe_operations"), 1000u);
}

TEST(StreamMachine, ResetClears) {
  StreamMachine machine;
  machine.charge_serial(1000);
  machine.reset();
  EXPECT_EQ(machine.elapsed(), ModelTime::zero());
  EXPECT_EQ(machine.ops().get("mta.serial_instructions"), 0u);
}

TEST(StreamMachine, NegativeWorkRejected) {
  StreamMachine machine;
  EXPECT_THROW(machine.charge_parallel(-1, 10), ContractViolation);
  EXPECT_THROW(machine.charge_serial(-1), ContractViolation);
}

}  // namespace
}  // namespace emdpa::mta
