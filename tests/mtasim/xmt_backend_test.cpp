#include <gtest/gtest.h>

#include "core/error.h"
#include "md/backend.h"
#include "mtasim/mta_backend.h"
#include "mtasim/xmt_backend.h"

namespace emdpa::mta {
namespace {

md::RunConfig small_config(std::size_t n = 128, int steps = 2) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n;
  cfg.steps = steps;
  return cfg;
}

TEST(XmtBackend, NameAndPrecision) {
  XmtConfig cfg;
  cfg.n_processors = 4;
  EXPECT_EQ(XmtBackend(cfg).name(), "xmt[4p]");
  EXPECT_EQ(XmtBackend().precision(), "double");
}

TEST(XmtBackend, RejectsOversizedMachines) {
  XmtConfig cfg;
  cfg.n_processors = 9000;
  EXPECT_THROW(XmtBackend backend(cfg), ContractViolation);
}

TEST(NaiveRemoteFraction, Values) {
  EXPECT_DOUBLE_EQ(naive_remote_fraction(1), 0.0);
  EXPECT_DOUBLE_EQ(naive_remote_fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(naive_remote_fraction(4), 0.75);
  EXPECT_THROW(naive_remote_fraction(0), ContractViolation);
}

TEST(XmtParallelTime, LocalWorkIsIssueBound) {
  XmtConfig cfg;  // 1 processor, 500 MHz
  const ModelTime t = xmt_parallel_time(cfg, 5.0e8, 0.0);
  EXPECT_NEAR(t.to_seconds(), 1.0, 1e-9);
}

TEST(XmtParallelTime, RemoteTrafficCanDominate) {
  XmtConfig cfg;
  cfg.n_processors = 64;
  // Fully remote: network capacity 0.5 * 64^(2/3) = 8 refs/cycle vs
  // 0.35 refs/instruction demand -> network-bound.
  const ModelTime remote = xmt_parallel_time(cfg, 1.0e9, 1.0);
  const ModelTime local = xmt_parallel_time(cfg, 1.0e9, 0.0);
  EXPECT_GT(remote.to_seconds(), 2.0 * local.to_seconds());
}

TEST(XmtParallelTime, ValidatesInputs) {
  XmtConfig cfg;
  EXPECT_THROW(xmt_parallel_time(cfg, -1.0, 0.0), ContractViolation);
  EXPECT_THROW(xmt_parallel_time(cfg, 1.0, 1.5), ContractViolation);
}

TEST(XmtBackend, PhysicsMatchesMta2Exactly) {
  // Same double-precision arithmetic as the MTA-2 port.
  const auto cfg = small_config();
  const auto xmt = XmtBackend().run(cfg);
  const auto mta = MtaBackend().run(cfg);
  for (std::size_t i = 0; i < xmt.final_state.size(); ++i) {
    EXPECT_EQ(xmt.final_state.positions()[i], mta.final_state.positions()[i]);
  }
}

TEST(XmtBackend, SingleProcessorIsClockFasterThanMta2) {
  const auto cfg = small_config();
  const double xmt = XmtBackend().run(cfg).device_time.to_seconds();
  const double mta = MtaBackend().run(cfg).device_time.to_seconds();
  EXPECT_NEAR(mta / xmt, 2.5, 0.1);  // 500 MHz vs 200 MHz
}

TEST(XmtBackend, ScalingSaturatesUnderNaivePlacement) {
  const auto cfg = small_config(256, 2);
  const double t1 = XmtBackend().run(cfg).device_time.to_seconds();

  XmtConfig two;
  two.n_processors = 2;
  const double t2 = XmtBackend(two).run(cfg).device_time.to_seconds();
  EXPECT_NEAR(t1 / t2, 2.0, 0.1);  // still issue-bound

  XmtConfig sixteen;
  sixteen.n_processors = 16;
  const double t16 = XmtBackend(sixteen).run(cfg).device_time.to_seconds();
  const double speedup16 = t1 / t16;
  EXPECT_GT(speedup16, 8.0);   // still far better than 8 processors' worth…
  EXPECT_LT(speedup16, 14.0);  // …but visibly below the ideal 16x
}

TEST(XmtBackend, StepTimesSumToDeviceTime) {
  const auto r = XmtBackend().run(small_config());
  ModelTime sum;
  for (const auto& t : r.step_times) sum += t;
  EXPECT_NEAR(sum.to_seconds(), r.device_time.to_seconds(), 1e-12);
}

}  // namespace
}  // namespace emdpa::mta
