// TrajectoryStore: byte-exact time travel over real simulation runs.
//
// The central property, proven here over randomized trajectories: for EVERY
// stored step, load_step() returns a checkpoint whose serialisation is
// byte-identical to the snapshot the live run produced at that step — across
// kernels, precisions, strides and keyframe intervals.  Plus the corruption
// story (any single flipped bit on disk fails restoration loudly), ring
// eviction, reopen, and the pure-observer guarantee (a store-enabled run is
// bitwise identical to a store-disabled one).
#include "md/trajectory_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/random.h"
#include "md/simulation.h"

namespace emdpa::md {
namespace {

namespace fs = std::filesystem;

class TrajectoryStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("store_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  TrajectoryStoreOptions store_options(int keyframe_interval,
                                       std::uint64_t max_bytes = 0) {
    TrajectoryStoreOptions options;
    options.directory = dir_;
    options.keyframe_interval = keyframe_interval;
    options.max_bytes = max_bytes;
    return options;
  }

  std::string dir_;
};

std::string serialized(const Checkpoint& cp) {
  std::ostringstream out;
  save_checkpoint(out, cp);
  return out.str();
}

/// Run `steps` steps, appending a snapshot every `stride` steps (plus step 0
/// and the end) and capturing the live snapshot's serialisation for each.
std::map<long, std::string> record_run(Simulation& sim, TrajectoryStore& store,
                                       int steps, int stride) {
  std::map<long, std::string> live;
  store.append(sim.snapshot());
  live[sim.current_step()] = serialized(sim.snapshot());
  for (int s = 1; s <= steps; ++s) {
    sim.step();
    if (s % stride == 0 || s == steps) {
      if (!store.has_step(sim.current_step())) {
        store.append(sim.snapshot());
        live[sim.current_step()] = serialized(sim.snapshot());
      }
    }
  }
  return live;
}

TEST_F(TrajectoryStoreTest, EveryStoredStepRestoresByteExact) {
  Simulation::Options options;
  options.workload.n_atoms = 256;
  options.kernel = SimKernel::kNeighborList;
  Simulation sim(options);

  TrajectoryStore store(store_options(3));
  const auto live = record_run(sim, store, 20, 2);

  EXPECT_EQ(store.stats().snapshots, live.size());
  EXPECT_GT(store.stats().keyframes, 1u);  // interval 3 over 11 snapshots
  EXPECT_GT(store.stats().deltas, 0u);
  for (const auto& [step, text] : live) {
    EXPECT_EQ(serialized(store.load_step(step)), text) << "step " << step;
  }
}

// The randomized property harness: 50 trajectories with random kernel,
// precision, seed, stride and keyframe interval — every stored step must
// restore byte-exactly.
TEST_F(TrajectoryStoreTest, RandomizedTrajectoriesRestoreByteExact) {
  Rng rng(20070326);
  for (int trajectory = 0; trajectory < 50; ++trajectory) {
    const bool list_kernel = rng.uniform_index(2) == 0;
    Simulation::Options options;
    // The list kernel needs a box comfortably larger than cutoff+skin;
    // the N^2 kernel is happy with small cheap systems.
    options.workload.n_atoms = list_kernel ? 256 : 32 + rng.uniform_index(64);
    options.workload.seed = rng.next_u64();
    options.kernel = list_kernel ? SimKernel::kNeighborList : SimKernel::kSoaN2;
    const std::uint64_t precision = rng.uniform_index(3);
    options.precision = precision == 0   ? PrecisionMode::kDouble
                        : precision == 1 ? PrecisionMode::kSingle
                                         : PrecisionMode::kMixed;
    Simulation sim(options);

    const std::string subdir =
        dir_ + "/t" + std::to_string(trajectory);
    TrajectoryStoreOptions store_opts;
    store_opts.directory = subdir;
    store_opts.keyframe_interval = 1 + static_cast<int>(rng.uniform_index(5));
    TrajectoryStore store(store_opts);

    const int steps = 5 + static_cast<int>(rng.uniform_index(10));
    const int stride = 1 + static_cast<int>(rng.uniform_index(4));
    const auto live = record_run(sim, store, steps, stride);

    for (const auto& [step, text] : live) {
      ASSERT_EQ(serialized(store.load_step(step)), text)
          << "trajectory " << trajectory << " step " << step << " ("
          << to_string(options.kernel) << ", "
          << to_string(options.precision) << ", stride " << stride
          << ", keyframe " << store_opts.keyframe_interval << ")";
    }
  }
}

TEST_F(TrajectoryStoreTest, AnySingleBitFlipFailsRestorationLoudly) {
  Simulation::Options options;
  options.workload.n_atoms = 48;
  options.kernel = SimKernel::kSoaN2;
  Simulation sim(options);
  TrajectoryStore store(store_options(3));
  record_run(sim, store, 6, 1);

  for (const long step : store.steps()) {
    char name[48];
    std::snprintf(name, sizeof(name), "frame_%012ld", step);
    fs::path path;
    for (const char* ext : {".key", ".delta"}) {
      const fs::path candidate = fs::path(dir_) / (std::string(name) + ext);
      if (fs::exists(candidate)) path = candidate;
    }
    ASSERT_FALSE(path.empty()) << "step " << step;

    std::string content;
    {
      std::ifstream in(path, std::ios::binary);
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    std::string corrupt = content;
    corrupt[corrupt.size() / 2] ^= 0x04;  // one flipped bit, mid-payload
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << corrupt;
    }
    EXPECT_THROW(store.load_step(step), RuntimeFailure) << "step " << step;
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;  // restore for the next iteration
  }
}

TEST_F(TrajectoryStoreTest, CorruptIndexFailsReopenLoudly) {
  {
    Simulation::Options options;
    options.workload.n_atoms = 32;
    options.kernel = SimKernel::kSoaN2;
    Simulation sim(options);
    TrajectoryStore store(store_options(2));
    record_run(sim, store, 4, 1);
  }
  const fs::path index = fs::path(dir_) / "index";
  std::string content;
  {
    std::ifstream in(index, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  content[content.size() / 2] ^= 0x01;
  {
    std::ofstream out(index, std::ios::trunc | std::ios::binary);
    out << content;
  }
  EXPECT_THROW(TrajectoryStore{store_options(2)}, RuntimeFailure);
}

TEST_F(TrajectoryStoreTest, ReopenResumesTheRing) {
  Simulation::Options options;
  options.workload.n_atoms = 64;
  options.kernel = SimKernel::kSoaN2;
  Simulation sim(options);

  std::map<long, std::string> live;
  {
    TrajectoryStore store(store_options(3));
    live = record_run(sim, store, 8, 2);
  }

  // A second store over the same directory continues the chain: deltas keep
  // building on the frames the first instance wrote.
  TrajectoryStore reopened(store_options(3));
  EXPECT_EQ(reopened.steps().size(), live.size());
  for (int s = 9; s <= 14; ++s) {
    sim.step();
    if (s % 2 == 0) {
      reopened.append(sim.snapshot());
      live[sim.current_step()] = serialized(sim.snapshot());
    }
  }
  for (const auto& [step, text] : live) {
    EXPECT_EQ(serialized(reopened.load_step(step)), text) << "step " << step;
  }
}

TEST_F(TrajectoryStoreTest, RingEvictionDropsOldestChainsKeepsNewest) {
  Simulation::Options options;
  options.workload.n_atoms = 64;
  options.kernel = SimKernel::kSoaN2;
  Simulation sim(options);

  // Budget ~3 keyframes' worth: with stride 1 and interval 4 the ring must
  // evict old chains as the run advances.
  TrajectoryStore store(store_options(4, 60'000));
  const auto live = record_run(sim, store, 40, 1);

  EXPECT_GT(store.stats().evicted_frames, 0u);
  const std::vector<long> steps = store.steps();
  ASSERT_FALSE(steps.empty());
  EXPECT_GT(steps.front(), 0L);    // the oldest chains are gone
  EXPECT_EQ(steps.back(), 40L);    // the newest snapshot never is
  for (const long step : steps) {
    EXPECT_EQ(serialized(store.load_step(step)), live.at(step))
        << "step " << step;
  }
  // Evicted frames' files are deleted, not just forgotten.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("frame_", 0) == 0) ++files;
  }
  EXPECT_EQ(files, steps.size());
}

TEST_F(TrajectoryStoreTest, AppendsMustAdvance) {
  Simulation::Options options;
  options.workload.n_atoms = 32;
  options.kernel = SimKernel::kSoaN2;
  Simulation sim(options);
  TrajectoryStore store(store_options(2));
  store.append(sim.snapshot());
  EXPECT_THROW(store.append(sim.snapshot()), RuntimeFailure);
}

TEST_F(TrajectoryStoreTest, UnknownStepsFailLoudly) {
  Simulation::Options options;
  options.workload.n_atoms = 32;
  options.kernel = SimKernel::kSoaN2;
  Simulation sim(options);
  TrajectoryStore store(store_options(2));
  store.append(sim.snapshot());
  EXPECT_THROW(store.load_step(7), RuntimeFailure);
  EXPECT_FALSE(store.has_step(7));
  EXPECT_EQ(store.nearest_at_or_before(7), 0L);
  EXPECT_EQ(store.nearest_at_or_before(-1), -1L);
}

// The pure-observer guarantee the whole design rests on: snapshotting (and
// storing) a run perturbs nothing.  Run the same melt twice — once plain,
// once snapshotting every 3 steps through the store — and demand bitwise
// identical state, including under the neighbour-list kernel whose listref
// section is what makes this possible.
TEST_F(TrajectoryStoreTest, StoreEnabledRunIsBitwiseIdenticalToStoreDisabled) {
  Simulation::Options options;
  options.workload.n_atoms = 256;
  options.kernel = SimKernel::kNeighborList;

  Simulation plain(options);
  for (int s = 1; s <= 24; ++s) plain.step();

  Simulation stored(options);
  TrajectoryStore store(store_options(2));
  record_run(stored, store, 24, 3);

  ASSERT_EQ(plain.current_step(), stored.current_step());
  EXPECT_EQ(plain.last_energies().kinetic, stored.last_energies().kinetic);
  EXPECT_EQ(plain.last_energies().potential, stored.last_energies().potential);
  for (std::size_t i = 0; i < plain.system().size(); ++i) {
    EXPECT_EQ(plain.system().positions()[i], stored.system().positions()[i]);
    EXPECT_EQ(plain.system().velocities()[i], stored.system().velocities()[i]);
    EXPECT_EQ(plain.system().accelerations()[i],
              stored.system().accelerations()[i]);
  }
}

// And the flip side: a run RESUMED from a mid-run snapshot continues
// bit-identically to the original — the listref section reseeds the exact
// neighbour list instead of forcing a rebuild the original never did.
TEST_F(TrajectoryStoreTest, ResumeFromSnapshotContinuesBitExactly) {
  Simulation::Options options;
  options.workload.n_atoms = 256;
  options.kernel = SimKernel::kNeighborList;

  Simulation original(options);
  TrajectoryStore store(store_options(3));
  record_run(original, store, 20, 4);  // original now at step 20

  Simulation replay = Simulation::resume(store.load_step(12), options);
  ASSERT_EQ(replay.current_step(), 12);
  for (int s = 13; s <= 20; ++s) replay.step();

  EXPECT_EQ(original.last_energies().potential,
            replay.last_energies().potential);
  for (std::size_t i = 0; i < original.system().size(); ++i) {
    EXPECT_EQ(original.system().positions()[i],
              replay.system().positions()[i]);
    EXPECT_EQ(original.system().velocities()[i],
              replay.system().velocities()[i]);
  }
}

}  // namespace
}  // namespace emdpa::md
