// XOR+RLE delta codec: structural unit tests plus the randomized round-trip
// property harness (50 synthetic snapshot trajectories of drifting byte
// buffers — the shape real frame words have: long equal prefixes, short
// bursts of low-mantissa change).
#include "core/delta_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/error.h"
#include "core/random.h"

namespace emdpa {
namespace {

using Bytes = std::vector<std::uint8_t>;

TEST(DeltaCodec, IdenticalBuffersEncodeToOneZeroRun) {
  const Bytes base(256, 0xab);
  const std::string delta = delta_encode(base, base);
  EXPECT_EQ(delta, "z256\n");
  EXPECT_EQ(delta_apply(base, delta), base);
}

TEST(DeltaCodec, EmptyBuffersRoundTrip) {
  const Bytes empty;
  EXPECT_EQ(delta_apply(empty, delta_encode(empty, empty)), empty);
}

TEST(DeltaCodec, SingleChangedByteRoundTrips) {
  Bytes base(64, 0);
  Bytes next = base;
  next[17] = 0x5c;
  const std::string delta = delta_encode(base, next);
  EXPECT_EQ(delta_apply(base, delta), next);
  // One literal byte, everything else zero runs: far smaller than the data.
  EXPECT_LT(delta.size(), 16u);
}

TEST(DeltaCodec, FullyDifferentBuffersRoundTrip) {
  Rng rng(1);
  Bytes base(512), next(512);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::uint8_t>(rng.next_u64());
    next[i] = static_cast<std::uint8_t>(~base[i]);  // every byte differs
  }
  EXPECT_EQ(delta_apply(base, delta_encode(base, next)), next);
}

TEST(DeltaCodec, RejectsSizeMismatch) {
  EXPECT_THROW(delta_encode(Bytes(8), Bytes(9)), RuntimeFailure);
}

TEST(DeltaCodec, RejectsMalformedPayloads) {
  const Bytes base(16, 0);
  EXPECT_THROW(delta_apply(base, "z"), RuntimeFailure);       // empty run count
  EXPECT_THROW(delta_apply(base, "zX"), RuntimeFailure);      // bad run count
  EXPECT_THROW(delta_apply(base, "q4"), RuntimeFailure);      // unknown token
  EXPECT_THROW(delta_apply(base, "abc"), RuntimeFailure);     // odd hex length
  EXPECT_THROW(delta_apply(base, "z8"), RuntimeFailure);      // undercoverage
  EXPECT_THROW(delta_apply(base, "z17"), RuntimeFailure);     // overrun
  EXPECT_THROW(delta_apply(base, "z16 00"), RuntimeFailure);  // trailing bytes
}

TEST(DeltaCodec, PayloadLinesStayWrapped) {
  // The encoder wraps at 76 columns but never splits a token, so a line can
  // exceed the wrap column only when it holds a single oversized hex token.
  Rng rng(2);
  Bytes base(4096), next(4096);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::uint8_t>(rng.next_u64());
    // Sparse mutation: short hex tokens interleaved with zero runs, the
    // shape real snapshot deltas take.
    next[i] = (i % 8 == 0) ? static_cast<std::uint8_t>(rng.next_u64())
                           : base[i];
  }
  const std::string delta = delta_encode(base, next);
  EXPECT_EQ(delta_apply(base, delta), next);
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= delta.size(); ++i) {
    if (i == delta.size() || delta[i] == '\n') {
      const std::string line = delta.substr(line_start, i - line_start);
      if (line.size() > 76u) {
        EXPECT_EQ(line.find(' '), std::string::npos)
            << "overlong line holds more than one token: " << line;
      }
      line_start = i + 1;
    }
  }
}

// The property harness: 50 randomized "trajectories" — sequences of buffers
// where each successor drifts from its predecessor the way serialised
// snapshots do (a random fraction of positions mutated, mostly in low
// bytes).  Every hop must round-trip byte-exactly through encode/apply, and
// chains of deltas must reconstruct the final state from the first.
TEST(DeltaCodec, RandomizedTrajectoriesRoundTripByteExact) {
  Rng rng(20070326);
  for (int trajectory = 0; trajectory < 50; ++trajectory) {
    const std::size_t size = 64 + rng.uniform_index(2048);
    const int hops = 2 + static_cast<int>(rng.uniform_index(6));
    Bytes current(size);
    for (auto& b : current) b = static_cast<std::uint8_t>(rng.next_u64());

    const Bytes first = current;
    std::vector<std::string> chain;
    for (int hop = 0; hop < hops; ++hop) {
      Bytes next = current;
      // Mutate between 0 and ~25% of the bytes, clustered in short bursts.
      std::uint64_t mutations = rng.uniform_index(size / 4 + 1);
      while (mutations > 0) {
        const std::size_t at = rng.uniform_index(size);
        const std::size_t burst =
            std::min<std::size_t>(1 + rng.uniform_index(8), size - at);
        for (std::size_t i = 0; i < burst; ++i) {
          next[at + i] ^= static_cast<std::uint8_t>(rng.next_u64() | 1);
        }
        mutations = mutations > burst ? mutations - burst : 0;
      }

      const std::string delta = delta_encode(current, next);
      ASSERT_EQ(delta_apply(current, delta), next)
          << "trajectory " << trajectory << " hop " << hop;
      chain.push_back(delta);
      current = next;
    }

    // Replaying the whole chain from the first buffer lands on the last —
    // exactly what TrajectoryStore::load_step does within a keyframe chain.
    Bytes replay = first;
    for (const std::string& delta : chain) replay = delta_apply(replay, delta);
    ASSERT_EQ(replay, current) << "trajectory " << trajectory;
  }
}

}  // namespace
}  // namespace emdpa
