// emdpa bisect self-tests: the differential harness must localise a known
// injected divergence to its exact step within the advertised replay bound,
// report sp-vs-dp divergence stably across reruns, and call bitwise-equal
// pairs clean.
#include "driver/bisect.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "core/error.h"
#include "core/random.h"
#include "md/precision.h"

namespace emdpa::driver {
namespace {

namespace fs = std::filesystem;

class BisectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("bisect_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A small fast dp pair: 64 atoms (N^2 kernel), 48 steps, snapshot
  /// stride 8 — 6 snapshot intervals, so the replay bound is
  /// ceil(log2(6)) + 1 = 4.
  BisectOptions base_pair(const std::string& subdir) {
    BisectOptions options;
    options.store_dir = dir_ + "/" + subdir;
    for (BisectSide* side : {&options.a, &options.b}) {
      side->config.workload.n_atoms = 64;
      side->config.steps = 48;
      side->config.store_every = 8;
      side->config.store_keyframe_every = 4;
    }
    options.a.label = "a";
    options.b.label = "b";
    return options;
  }

  std::string dir_;
};

TEST(BisectUlp, UlpDistanceIsBitAccurate) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(-2.5, -2.5), 0u);
  const double up = std::nextafter(1.0, 2.0);
  EXPECT_EQ(ulp_distance(1.0, up), 1u);
  EXPECT_EQ(ulp_distance(up, 1.0), 1u);
  // -0.0 and +0.0 are distinct bit patterns one rank apart.
  EXPECT_EQ(ulp_distance(0.0, -0.0), 1u);
  // Distance is symmetric across the sign boundary, not bit-pattern naive.
  const double neg = std::nextafter(0.0, -1.0);
  const double pos = std::nextafter(0.0, 1.0);
  EXPECT_EQ(ulp_distance(neg, pos), 3u);  // neg, -0.0, +0.0, pos
}

TEST_F(BisectTest, IdenticalDpSidesReportNoDivergence) {
  const BisectReport report = run_bisect(base_pair("self"));
  EXPECT_FALSE(report.diverged);
  EXPECT_EQ(report.first_divergence_step, -1);
  const std::string text = render_bisect_report(report);
  EXPECT_NE(text.find("bisect: no divergence"), std::string::npos);
}

TEST_F(BisectTest, DifferentThreadCountsReportNoDivergence) {
  // The determinism guarantee, demonstrated through the harness built to
  // catch its violation: thread count must not change the trajectory.
  BisectOptions options = base_pair("threads");
  options.a.threads = 1;
  options.b.threads = 3;
  EXPECT_FALSE(run_bisect(options).diverged);
}

TEST_F(BisectTest, InjectedFaultIsLocalizedExactlyWithinTheReplayBound) {
  // Random fault steps across the run — early, mid-window, on a snapshot
  // boundary, and at the very last step.  The one-ulp md.step_perturb kick
  // at step K first shows in the post-step state of step K, and bisect must
  // name exactly that step in at most ceil(log2(steps/stride)) + 1 replays.
  Rng rng(20070326);
  std::vector<long> fault_steps = {1, 8, 48};
  for (int i = 0; i < 3; ++i) {
    fault_steps.push_back(1 + static_cast<long>(rng.uniform_index(48)));
  }
  for (const long k : fault_steps) {
    BisectOptions options = base_pair("fault" + std::to_string(k));
    options.b.faults = "md.step_perturb:" + std::to_string(k);
    const BisectReport report = run_bisect(options);
    EXPECT_TRUE(report.diverged) << "fault step " << k;
    EXPECT_EQ(report.first_divergence_step, k) << "fault step " << k;
    EXPECT_EQ(report.replay_bound, 4) << "fault step " << k;  // ceil(lg 6)+1
    EXPECT_LE(report.replays_per_side, report.replay_bound)
        << "fault step " << k;
    EXPECT_GE(report.window_lo, 0L);
    EXPECT_GT(report.window_hi, report.window_lo);
    EXPECT_LE(report.window_lo, k - 1);
    EXPECT_GE(report.window_hi, k);
    // A one-ulp velocity kick is a one-ulp delta at the divergence step.
    EXPECT_EQ(report.atom, 0u) << "fault step " << k;
    EXPECT_EQ(report.component, "vel.x") << "fault step " << k;
    EXPECT_EQ(report.ulp_delta, 1u) << "fault step " << k;
  }
}

TEST_F(BisectTest, FaultReportIsGrepStable) {
  BisectOptions options = base_pair("grep");
  options.b.faults = "md.step_perturb:17";
  const std::string text = render_bisect_report(run_bisect(options));
  EXPECT_NE(text.find("bisect: first divergence at step 17"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("replays per side"), std::string::npos);
}

TEST_F(BisectTest, SpVsDpLocalizationIsStableAcrossReruns) {
  // sp-vs-dp divergence is physics, not noise: two independent bisections
  // (fresh stores, fresh replays) must name the same step, atom and
  // component.
  BisectOptions first = base_pair("spdp1");
  first.b.config.precision = md::PrecisionMode::kSingle;
  BisectOptions second = base_pair("spdp2");
  second.b.config.precision = md::PrecisionMode::kSingle;

  const BisectReport r1 = run_bisect(first);
  const BisectReport r2 = run_bisect(second);
  ASSERT_TRUE(r1.diverged);
  ASSERT_TRUE(r2.diverged);
  // Float arithmetic differs from the first force evaluation onward.
  EXPECT_EQ(r1.first_divergence_step, 1);
  EXPECT_EQ(r2.first_divergence_step, r1.first_divergence_step);
  EXPECT_EQ(r2.atom, r1.atom);
  EXPECT_EQ(r2.component, r1.component);
  EXPECT_EQ(r2.ulp_delta, r1.ulp_delta);
  EXPECT_LE(r1.replays_per_side, r1.replay_bound);
}

TEST_F(BisectTest, MismatchedPairsAreRejected) {
  BisectOptions no_dir = base_pair("x");
  no_dir.store_dir.clear();
  EXPECT_THROW(run_bisect(no_dir), RuntimeFailure);

  BisectOptions steps = base_pair("steps");
  steps.b.config.steps = 40;
  EXPECT_THROW(run_bisect(steps), RuntimeFailure);

  BisectOptions stride = base_pair("stride");
  stride.b.config.store_every = 4;
  EXPECT_THROW(run_bisect(stride), RuntimeFailure);

  // Different workloads diverge at step 0 — that is an input error, not a
  // divergence to bisect.
  BisectOptions workload = base_pair("workload");
  workload.b.config.workload.seed += 1;
  EXPECT_THROW(run_bisect(workload), RuntimeFailure);
}

}  // namespace
}  // namespace emdpa::driver
