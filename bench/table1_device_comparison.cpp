// Table 1 reproduction: performance comparison of the MD calculation at
// 2048 atoms, 10 time steps.
//
//   Paper:  Opteron 4.084 s | Cell 1 SPE 3.86 s | Cell 8 SPEs 0.789 s |
//           Cell PPE-only 20.5 s
#include "bench_util.h"

#include "cellsim/cell_md_app.h"
#include "core/string_util.h"
#include "cpu/opteron_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Table 1",
                   "Performance comparison of MD calculations (2048 atoms)",
                   "10 velocity-Verlet steps; Cell rows single precision,\n"
                   "Opteron double precision, as in the paper.");

  const md::RunConfig cfg = eb::paper_run(2048);

  struct Row {
    std::string label;
    double paper_seconds;
    md::RunResult result;
  };

  cell::CellRunOptions one_spe;
  one_spe.n_spes = 1;
  cell::CellRunOptions eight_spes;
  eight_spes.n_spes = 8;
  cell::CellRunOptions ppe_only;
  ppe_only.n_spes = 0;

  std::vector<Row> rows;
  rows.push_back({"Opteron 2.2 GHz", 4.084, opteron::OpteronBackend().run(cfg)});
  rows.push_back({"Cell, 1 SPE", 3.86, cell::CellBackend(one_spe).run(cfg)});
  rows.push_back({"Cell, 8 SPEs", 0.789, cell::CellBackend(eight_spes).run(cfg)});
  rows.push_back({"Cell, PPE only", 20.5, cell::CellBackend(ppe_only).run(cfg)});

  const double opteron_s = rows[0].result.device_time.to_seconds();

  Table table({"platform", "model (s)", "paper (s)", "model/paper",
               "speedup vs Opteron"});
  std::vector<std::vector<std::string>> csv = {
      {"platform", "model_s", "paper_s"}};
  for (const auto& row : rows) {
    const double t = row.result.device_time.to_seconds();
    table.add_row({row.label, format_fixed(t, 3),
                   format_fixed(row.paper_seconds, 3),
                   format_fixed(t / row.paper_seconds, 2),
                   format_fixed(opteron_s / t, 2) + "x"});
    csv.push_back({row.label, format_fixed(t, 4),
                   format_fixed(row.paper_seconds, 3)});
  }

  eb::print_table(table);
  const double t8 = rows[2].result.device_time.to_seconds();
  const double tppe = rows[3].result.device_time.to_seconds();
  std::cout << "Shape checks: 8 SPEs are "
            << format_fixed(opteron_s / t8, 2)
            << "x the Opteron (paper: 'better than 5x') and "
            << format_fixed(tppe / t8, 1)
            << "x the PPE alone (paper: '26x').\n\n";
  eb::print_csv_block("table1", csv);
  return 0;
}
