// Figure 9 reproduction: increase in runtime with respect to the 256-atom
// run, MTA-2 vs Opteron.
//
// The MTA has no caches: its runtime grows with the floating-point work
// (~N^2 candidate pairs).  The Opteron tracks the same curve while the
// position arrays fit in its 64 KB L1, then grows faster once they spill
// (>= 4096 atoms at this density) — the paper's cache-capacity effect.
#include "bench_util.h"

#include "core/string_util.h"
#include "cpu/opteron_backend.h"
#include "mtasim/mta_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Figure 9",
                   "Increase in runtime with respect to the 256-atom run",
                   "Ratios of per-step model time (steady-state, 2-step\n"
                   "runs).  'pair work' is the candidate-pair growth\n"
                   "N(N-1)/(256*255) — the FLOP-proportional expectation.");

  Table table({"atoms", "MTA ratio", "Opteron ratio", "pair work",
               "Opteron excess"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "mta_ratio", "opteron_ratio", "pair_work_ratio"}};

  double mta_base = 0.0, cpu_base = 0.0;
  for (const std::size_t n : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const md::RunConfig cfg = eb::paper_run(n, 2);
    const double t_mta =
        eb::ten_step_estimate_seconds(mta::MtaBackend().run(cfg));
    const double t_cpu =
        eb::ten_step_estimate_seconds(opteron::OpteronBackend().run(cfg));
    if (n == 256) {
      mta_base = t_mta;
      cpu_base = t_cpu;
    }
    const double work = (double(n) * (double(n) - 1)) / (256.0 * 255.0);
    const double mta_ratio = t_mta / mta_base;
    const double cpu_ratio = t_cpu / cpu_base;
    table.add_row({std::to_string(n), format_fixed(mta_ratio, 2),
                   format_fixed(cpu_ratio, 2), format_fixed(work, 2),
                   format_fixed((cpu_ratio / mta_ratio - 1.0) * 100.0, 1) + "%"});
    csv.push_back({std::to_string(n), format_fixed(mta_ratio, 3),
                   format_fixed(cpu_ratio, 3), format_fixed(work, 3)});
  }

  eb::print_table(table);
  std::cout << "Paper claims: 'the runtime on the Opteron processor increases\n"
               "at a relatively faster rate' (cache misses as arrays outgrow\n"
               "the caches) while 'the increases in the MTA runtime are\n"
               "proportional to the increase in the floating-point\n"
               "computation requirements'.\n\n";
  eb::print_csv_block("fig9", csv);
  return 0;
}
