// Ablation A8: resident vs tiled-streaming data layout on the Cell.
//
// The paper's port keeps the entire position array resident in every SPE's
// local store — simple, but two full quadword arrays next to the program
// image cap the system at ~6500 atoms.  Double-buffered tile streaming (the
// classic Cell technique the port stops short of) lifts the cap: tiles
// transfer while the previous tile computes, so at MD's arithmetic
// intensity the DMA hides completely.
#include "bench_util.h"

#include "cellsim/cell_md_app.h"
#include "core/error.h"
#include "core/string_util.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A8",
                   "Cell data layout: resident vs tiled streaming (8 SPEs)",
                   "10 steps (extrapolated from 2 steady-state steps).");

  Table table({"atoms", "resident (s)", "tiled (s)", "tiled/resident"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "resident_s", "tiled_s"}};

  cell::CellRunOptions tiled;
  tiled.data_layout = cell::SpeDataLayout::kTiledStreaming;
  tiled.tile_atoms = 1024;

  for (const std::size_t n : {1024u, 2048u, 4096u, 8192u}) {
    const md::RunConfig cfg = eb::paper_run(n, 2);
    const double t_tiled =
        eb::ten_step_estimate_seconds(cell::CellBackend(tiled).run(cfg));

    std::string resident_cell;
    double ratio_val = 0.0;
    try {
      const double t_res =
          eb::ten_step_estimate_seconds(cell::CellBackend().run(cfg));
      resident_cell = format_fixed(t_res, 3);
      ratio_val = t_tiled / t_res;
    } catch (const ContractViolation&) {
      resident_cell = "LS overflow";  // the real constraint, hit honestly
    }

    table.add_row({std::to_string(n), resident_cell, format_fixed(t_tiled, 3),
                   ratio_val > 0.0 ? format_fixed(ratio_val, 3) : "-"});
    csv.push_back({std::to_string(n), resident_cell, format_fixed(t_tiled, 4)});
  }

  eb::print_table(table);
  std::cout << "Tile streaming costs nothing measurable at MD's arithmetic\n"
               "intensity (each 16 KB tile transfers in ~1 us and computes\n"
               "for milliseconds) and removes the local-store size wall the\n"
               "resident layout hits beyond ~6500 atoms.\n\n";
  eb::print_csv_block("ablation_cell_tiled", csv);
  return 0;
}
