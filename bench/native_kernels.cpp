// Native wall-clock throughput of the host force kernels and integrator
// (google-benchmark).  These are real measurements on the build machine —
// complementary to the reproduction benches, which report *modelled* device
// time — and serve as the performance regression net for the MD library
// itself.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/random.h"
#include "core/thread_pool.h"
#include "md/cell_list_kernel.h"
#include "md/integrator.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/sharded_domain.h"
#include "md/simulation.h"
#include "md/single_precision.h"
#include "md/soa_kernel.h"
#include "md/trajectory_store.h"
#include "md/workload.h"

namespace {

using namespace emdpa;

md::Workload fluid(std::size_t n) {
  md::WorkloadSpec spec;
  spec.n_atoms = n;
  return md::make_lattice_workload(spec);
}

void BM_ReferenceKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::ReferenceKernel kernel;
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_ReferenceKernel)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ReferenceKernelSearch27(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::ReferenceKernel kernel(md::MinImageStrategy::kSearch27);
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
}
BENCHMARK(BM_ReferenceKernelSearch27)->Arg(256)->Arg(512);

void BM_ReferenceKernelSingle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  std::vector<Vec3f> pos;
  for (const auto& p : w.system.positions()) pos.push_back(vec_cast<float>(p));
  const md::PeriodicBoxF box(static_cast<float>(w.box.edge()));
  const auto lj = md::LjParams{}.cast<float>();
  md::ReferenceKernelF kernel;
  for (auto _ : state) {
    auto result = kernel.compute(pos, box, lj, 1.0f);
    benchmark::DoNotOptimize(result.potential_energy);
  }
}
BENCHMARK(BM_ReferenceKernelSingle)->Arg(256)->Arg(1024);

void BM_SoaKernel(benchmark::State& state) {
  // Single-threaded SoA/SIMD batch kernel — compare per-size against
  // BM_ReferenceKernel for the SIMD + hoisting speedup alone.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::SoaKernel kernel;
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_SoaKernel)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_SoaKernelParallel(benchmark::State& state) {
  // SoA kernel with atom rows fanned out over the global thread pool — the
  // full host-parallel execution path.  Threads are reported so runs on
  // different machines stay comparable.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::SoaKernel::Options options;
  options.pool = &ThreadPool::global();
  md::SoaKernel kernel(options);
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.counters["threads"] =
      static_cast<double>(ThreadPool::global().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_SoaKernelParallel)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_NeighborListSerial(benchmark::State& state) {
  // Steady-state list traversal, single-threaded: the O(N) answer to
  // BM_SoaKernel's O(N^2) sweep.  The list is built once outside the timed
  // region and reused, as in a real simulation between rebuilds.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::NeighborListKernel kernel;
  kernel.compute(w.system.positions(), w.box, lj, 1.0);  // prime the list
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborListSerial)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_NeighborListParallel(benchmark::State& state) {
  // The host fast path: pool-parallel list traversal.  Compare against
  // BM_SoaKernelParallel at the same size for the list-vs-N^2 crossover.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::NeighborListKernel::Options options;
  options.pool = &ThreadPool::global();
  md::NeighborListKernel kernel(options);
  kernel.compute(w.system.positions(), w.box, lj, 1.0);  // prime the list
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.counters["threads"] =
      static_cast<double>(ThreadPool::global().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborListParallel)
    ->Arg(1024)->Arg(2048)->Arg(4096)->Arg(16384);

void BM_NeighborListBuild(benchmark::State& state) {
  // Price the rebuild itself (bin + count + prefix + fill, pool-parallel):
  // what a simulation pays every few steps when atoms outrun the skin.
  // bin_ms / fill_ms split one build into its two phases (see
  // ParallelNeighborListT) so regressions localise.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::NeighborListKernel::Options options;
  options.pool = &ThreadPool::global();
  md::NeighborListKernel kernel(options);
  for (auto _ : state) {
    kernel.invalidate();
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(ThreadPool::global().size());
  state.counters["bin_ms"] = kernel.list().bin_seconds_total() * 1e3 / iters;
  state.counters["fill_ms"] = kernel.list().fill_seconds_total() * 1e3 / iters;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborListBuild)->Arg(2048)->Arg(16384)->Arg(100000);

void BM_NeighborListBuildThreads(benchmark::State& state) {
  // The 100k-atom scaling probe: the pure list build (no force evaluation)
  // on a private pool of the requested size.  The acceptance bar for the
  // parallel binning pass is >= 2x build speedup at 8 threads vs 1 thread
  // at 100k atoms; the list itself is bitwise identical at every thread
  // count (asserted by the md test label, not here).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  md::Workload w = fluid(n);
  md::LjParams lj;
  ThreadPool pool(threads);
  md::ParallelNeighborListT<double> list(0.3, &pool);
  for (auto _ : state) {
    list.invalidate();
    list.build(w.system.positions(), w.box, lj.cutoff);
    benchmark::DoNotOptimize(list.entries().data());
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(pool.size());
  state.counters["bin_ms"] = list.bin_seconds_total() * 1e3 / iters;
  state.counters["fill_ms"] = list.fill_seconds_total() * 1e3 / iters;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborListBuildThreads)
    ->Args({100000, 1})->Args({100000, 2})->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ShardedListBuild(benchmark::State& state) {
  // The spatially sharded build (md/sharded_domain.h) at a fixed 8-thread
  // pool, varying the shard count: the per-shard-parallel stencil sweep and
  // first-touch halo packing are where the speedup lives, so the acceptance
  // bar is >= 1.5x build speedup at 8 shards vs 1 shard at 1M atoms.
  // bin_ms / halo_ms / fill_ms split the build into its three phases; the
  // CSR is bitwise the flat list's at every shard count (ctest -L shard).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  md::Workload w = fluid(n);
  md::LjParams lj;
  ThreadPool pool(8);
  md::ShardedNeighborListT<double> list(0.3, &pool, shards);
  for (auto _ : state) {
    list.invalidate();
    list.build(w.system.positions(), w.box, lj.cutoff);
    benchmark::DoNotOptimize(list.entries().data());
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(pool.size());
  state.counters["shards"] = static_cast<double>(list.effective_shards());
  state.counters["bin_ms"] = list.bin_seconds_total() * 1e3 / iters;
  state.counters["halo_ms"] = list.halo_seconds_total() * 1e3 / iters;
  state.counters["fill_ms"] = list.fill_seconds_total() * 1e3 / iters;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShardedListBuild)
    ->Args({100000, 1})->Args({100000, 8})
    ->Args({1000000, 1})->Args({1000000, 2})->Args({1000000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SimulationSoaN2(benchmark::State& state) {
  // Whole simulation runs through the SimKernel seam, N^2 SoA path: the
  // end-to-end baseline the neighbour-list run below must beat at large N.
  const auto n = static_cast<std::size_t>(state.range(0));
  const int steps = static_cast<int>(state.range(1));
  for (auto _ : state) {
    md::Simulation::Options options;
    options.workload.n_atoms = n;
    options.kernel = md::SimKernel::kSoaN2;
    options.pool = &ThreadPool::global();
    md::Simulation sim(options);
    sim.run(steps);
    benchmark::DoNotOptimize(sim.last_energies().kinetic);
  }
  state.counters["threads"] =
      static_cast<double>(ThreadPool::global().size());
  state.counters["steps"] = static_cast<double>(steps);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          steps);
}
BENCHMARK(BM_SimulationSoaN2)
    ->Args({2048, 500})->Unit(benchmark::kMillisecond);

void BM_SimulationNeighborList(benchmark::State& state) {
  // Same run on the neighbour-list path.  'rebuilds' counts list builds
  // over the whole run — far fewer than 'steps' when the skin is doing its
  // job, which is where the wall-clock win over BM_SimulationSoaN2 comes
  // from.
  const auto n = static_cast<std::size_t>(state.range(0));
  const int steps = static_cast<int>(state.range(1));
  double rebuilds = 0;
  for (auto _ : state) {
    md::Simulation::Options options;
    options.workload.n_atoms = n;
    options.kernel = md::SimKernel::kNeighborList;
    options.pool = &ThreadPool::global();
    md::Simulation sim(options);
    sim.run(steps);
    benchmark::DoNotOptimize(sim.last_energies().kinetic);
    rebuilds = static_cast<double>(sim.list_rebuilds());
  }
  state.counters["threads"] =
      static_cast<double>(ThreadPool::global().size());
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["rebuilds"] = rebuilds;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          steps);
}
// The 100k-atom row is the large-N simulate path: per-step cost is dominated
// by list traversal, with the (now pool-parallel) rebuilds amortised by the
// skin policy.
BENCHMARK(BM_SimulationNeighborList)
    ->Args({2048, 500})->Args({100000, 25})->Unit(benchmark::kMillisecond);

void BM_SimulationStore(benchmark::State& state) {
  // The neighbour-list run with the time-travel store enabled: snapshot
  // every range(2) steps into a delta-compressed ring.  Compare against
  // BM_SimulationNeighborList at the same {atoms, steps} for the store
  // overhead; 'store_bytes' is the on-disk cost of one recorded run.
  const auto n = static_cast<std::size_t>(state.range(0));
  const int steps = static_cast<int>(state.range(1));
  const long stride = static_cast<long>(state.range(2));
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "emdpa_bench_store";
  double snapshots = 0, bytes = 0;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    md::TrajectoryStoreOptions store_options;
    store_options.directory = dir.string();
    md::TrajectoryStore store(store_options);
    md::Simulation::Options options;
    options.workload.n_atoms = n;
    options.kernel = md::SimKernel::kNeighborList;
    options.pool = &ThreadPool::global();
    md::Simulation sim(options);
    store.append(sim.snapshot());
    sim.run(steps, [&](long step, const md::StepEnergies&) {
      if (step % stride == 0 || step == steps) {
        if (!store.has_step(step)) store.append(sim.snapshot());
      }
    });
    benchmark::DoNotOptimize(sim.last_energies().kinetic);
    snapshots = static_cast<double>(store.stats().snapshots);
    bytes = static_cast<double>(store.stats().bytes);
  }
  std::filesystem::remove_all(dir);
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["snapshots"] = snapshots;
  state.counters["store_bytes"] = bytes;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          steps);
}
BENCHMARK(BM_SimulationStore)
    ->Args({2048, 500, 25})->Unit(benchmark::kMillisecond);

void BM_SoaKernelSingle(benchmark::State& state) {
  // Single-precision SoA kernel: double the lane width of the double path.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  std::vector<Vec3f> pos;
  for (const auto& p : w.system.positions()) pos.push_back(vec_cast<float>(p));
  const md::PeriodicBoxF box(static_cast<float>(w.box.edge()));
  const auto lj = md::LjParams{}.cast<float>();
  md::SoaKernelF kernel;
  for (auto _ : state) {
    auto result = kernel.compute(pos, box, lj, 1.0f);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_SoaKernelSingle)->Arg(256)->Arg(1024)->Arg(2048);

void BM_SoaKernelMixed(benchmark::State& state) {
  // The --precision mixed N^2 path: float lane math, double-facing API with
  // FP64 accumulation of the lane totals.  Runs on the double positions
  // directly — the per-call narrowing is part of what's being priced.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::SoaKernelMixed kernel;
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_SoaKernelMixed)->Arg(256)->Arg(1024)->Arg(2048);

void BM_NeighborListSingle(benchmark::State& state) {
  // The --precision sp list path (SingleNeighborListKernel: narrow, float
  // traversal, widen).  Compare against BM_NeighborListSerial at the same
  // size — the acceptance bar for the precision seam is >= 1.5x here.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::SingleNeighborListKernel kernel;
  kernel.compute(w.system.positions(), w.box, lj, 1.0);  // prime the list
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborListSingle)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_NeighborListMixed(benchmark::State& state) {
  // The --precision mixed list path: float rows reduced into FP64 totals.
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::NeighborListKernelMixed kernel;
  kernel.compute(w.system.positions(), w.box, lj, 1.0);  // prime the list
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborListMixed)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_CellListKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::CellListKernel kernel;
  for (auto _ : state) {
    auto result = kernel.compute(w.system.positions(), w.box, lj, 1.0);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CellListKernel)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_VerletStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  md::Workload w = fluid(n);
  md::LjParams lj;
  md::ReferenceKernel kernel;
  md::VelocityVerlet vv(0.005);
  vv.prime(w.system, w.box, lj, kernel);
  for (auto _ : state) {
    auto e = vv.step(w.system, w.box, lj, kernel);
    benchmark::DoNotOptimize(e.kinetic);
  }
}
BENCHMARK(BM_VerletStep)->Arg(256)->Arg(1024);

void BM_WorkloadConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    auto w = md::make_lattice_workload(spec);
    benchmark::DoNotOptimize(w.system.positions().data());
  }
}
BENCHMARK(BM_WorkloadConstruction)->Arg(2048)->Arg(16384);

void BM_MinImageStrategies(benchmark::State& state) {
  // Price the four image strategies on a synthetic displacement stream.
  md::PeriodicBox box(10.0);
  std::vector<Vec3d> drs;
  Rng rng(42);
  for (int i = 0; i < 4096; ++i) {
    drs.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10),
                   rng.uniform(-10, 10)});
  }
  const auto strategy = static_cast<md::MinImageStrategy>(state.range(0));
  for (auto _ : state) {
    Vec3d acc{};
    for (const auto& dr : drs) {
      switch (strategy) {
        case md::MinImageStrategy::kSearch27:
          acc += box.min_image_search27(dr);
          break;
        case md::MinImageStrategy::kBranchy:
          acc += box.min_image_branchy(dr);
          break;
        case md::MinImageStrategy::kCopysign:
          acc += box.min_image_copysign(dr);
          break;
        case md::MinImageStrategy::kRound:
          acc += box.min_image(dr);
          break;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MinImageStrategies)->DenseRange(0, 3);

}  // namespace
