// Ablation A9: small-cluster Cell scaling — the deployment the paper's
// conclusions target ("desktop and small cluster systems").
//
// B blades split the N^2 work but must exchange all positions every step
// over a 2006 commodity interconnect; the O(N) allgather against the
// O(N^2/B) compute sets the strong-scaling wall.
#include "bench_util.h"

#include "cellsim/cell_cluster.h"
#include "core/string_util.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A9",
                   "Small-cluster Cell scaling (8 SPEs per blade, GigE)",
                   "10 steps (extrapolated from 2 steady-state steps).");

  Table table({"atoms", "blades", "total (s)", "compute (s)", "wire (s)",
               "speedup vs 1 blade"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "blades", "total_s", "compute_s", "wire_s"}};

  for (const std::size_t n : {1024u, 4096u}) {
    double base = 0.0;
    for (const int blades : {1, 2, 4, 8}) {
      const md::RunConfig cfg = eb::paper_run(n, 2);
      cell::ClusterOptions options;
      options.n_blades = blades;
      const md::RunResult r = cell::CellClusterBackend(options).run(cfg);
      const double total = eb::ten_step_estimate_seconds(r);
      // Per-step shares scaled to 10 steps for the table.
      const double compute =
          r.breakdown_component("compute").to_seconds() / 2.0 * 10.0;
      const double wire =
          r.breakdown_component("interconnect").to_seconds() / 2.0 * 10.0;
      if (blades == 1) base = total;
      table.add_row({std::to_string(n), std::to_string(blades),
                     format_fixed(total, 3), format_fixed(compute, 3),
                     format_fixed(wire, 3),
                     format_fixed(base / total, 2) + "x"});
      csv.push_back({std::to_string(n), std::to_string(blades),
                     format_fixed(total, 4), format_fixed(compute, 4),
                     format_fixed(wire, 4)});
    }
  }

  eb::print_table(table);
  std::cout << "Small clusters of Cell blades extend the paper's single-chip\n"
               "win while the N^2/B compute dominates.  The scaling cap is\n"
               "set by what does NOT shrink with B: the per-step blade\n"
               "orchestration and the O(N) position exchange — at these atom\n"
               "counts the 2006-era software overheads bite before the GigE\n"
               "wire does, and both arrive earlier at the smaller N.\n\n";
  eb::print_csv_block("ablation_cluster", csv);
  return 0;
}
