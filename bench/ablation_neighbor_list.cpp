// Ablation A2: on-the-fly distances (the paper's kernel) vs a cell-list
// neighbour search — the cache-friendly technique the paper deliberately
// does NOT use ("We do not employ any optimization technique that has been
// proposed for cache-based systems").
//
// Both kernels produce identical physics (asserted by the test suite); this
// bench contrasts (a) the candidate-pair work each examines and (b) native
// wall-clock on this host, showing what the brute-force choice costs on a
// cache-based machine — context for why the paper's N^2 kernel is the
// interesting porting target in the first place.
#include "bench_util.h"

#include <chrono>
#include <functional>

#include "cellsim/cell_pairlist.h"
#include "core/string_util.h"
#include "core/thread_pool.h"
#include "cpu/opteron_pairlist.h"
#include "gpusim/gpu_pairlist.h"
#include "md/cell_list_kernel.h"
#include "md/pairlist_cost.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/simulation.h"
#include "md/verlet_list_kernel.h"
#include "md/workload.h"
#include "mtasim/mta_pairlist.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A2",
                   "Brute-force N^2 kernel vs cell-list neighbour search",
                   "One force evaluation per row; 'candidates' is the number\n"
                   "of distance tests performed.");

  Table table({"atoms", "N^2 cand", "cell-list cand", "verlet cand",
               "N^2 (ms)", "cell-list (ms)", "verlet (ms)"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "n2_candidates", "cl_candidates", "vl_candidates", "n2_ms",
       "cl_ms", "vl_ms"}};

  md::LjParams lj;
  for (const std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload w = md::make_lattice_workload(spec);

    md::ReferenceKernel brute;
    md::CellListKernel cells;
    md::VerletListKernel verlet;
    // Warm the Verlet list (the build is amortised over many steps in a
    // real run; time the steady-state evaluation).
    verlet.compute(w.system.positions(), w.box, lj, 1.0);

    md::ForceResult rb, rc, rv;
    const double t_brute = wall_seconds(
        [&] { rb = brute.compute(w.system.positions(), w.box, lj, 1.0); });
    const double t_cells = wall_seconds(
        [&] { rc = cells.compute(w.system.positions(), w.box, lj, 1.0); });
    const double t_verlet = wall_seconds(
        [&] { rv = verlet.compute(w.system.positions(), w.box, lj, 1.0); });

    table.add_row({std::to_string(n), std::to_string(rb.stats.candidates),
                   std::to_string(rc.stats.candidates),
                   std::to_string(rv.stats.candidates),
                   format_fixed(t_brute * 1e3, 2),
                   format_fixed(t_cells * 1e3, 2),
                   format_fixed(t_verlet * 1e3, 2)});
    csv.push_back({std::to_string(n), std::to_string(rb.stats.candidates),
                   std::to_string(rc.stats.candidates),
                   std::to_string(rv.stats.candidates),
                   format_fixed(t_brute * 1e3, 3),
                   format_fixed(t_cells * 1e3, 3),
                   format_fixed(t_verlet * 1e3, 3)});
  }

  eb::print_table(table);
  std::cout << "The cell list turns O(N^2) distance tests into O(N); the\n"
               "Verlet pairlist ('updated every few simulation time steps',\n"
               "section 3.4) trims the candidates further, to the cutoff+skin\n"
               "shell.  Both trade the brute-force kernel's streaming access\n"
               "for the irregular, cache-unfriendly pattern the paper\n"
               "describes — the trade the emerging architectures attack from\n"
               "the other side.\n\n";
  eb::print_csv_block("ablation_neighbor_list", csv);

  // ---- The section-3.4 trade-off, priced on each modelled device ----
  //
  // Each device family exposes an analytic pairlist variant of its force
  // loop next to the on-the-fly N^2 price (see *_pairlist.h).  All consume
  // one measured workload description, so the speedups are comparable.
  std::cout << "\n";
  eb::print_banner(
      "Ablation A2b", "Pairlist vs on-the-fly N^2 on the modelled devices",
      "Per-step force time (ms); 'x' columns are N^2 / pairlist speedup.\n"
      "Work measured from the real neighbour-list kernel (skin 0.3).");

  Table model_table({"atoms", "entries/cand", "rebuild per", "Opteron x",
                     "MTA-2 x", "Cell x", "GPU x"});
  std::vector<std::vector<std::string>> model_csv = {
      {"atoms", "list_entries_directed", "candidates_directed",
       "rebuild_period", "opteron_n2_ms", "opteron_list_ms", "mta_n2_ms",
       "mta_list_ms", "cell_n2_ms", "cell_list_ms", "gpu_n2_ms",
       "gpu_list_ms"}};

  const opteron::OpteronConfig opteron_cfg;
  const mta::MtaConfig mta_cfg;
  const cell::CellConfig cell_cfg;
  const gpu::GpuDeviceConfig gpu_cfg;
  const gpu::PcieConfig pcie_cfg;

  for (const std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    const md::PairlistStepWork work =
        md::measure_pairlist_step_work(spec, lj, /*skin=*/0.3, /*dt=*/0.005,
                                       /*steps=*/20);

    const ModelTime opt_n2 = opteron::n2_step_time(opteron_cfg, work);
    const ModelTime opt_pl = opteron::pairlist_step_time(opteron_cfg, work);
    const ModelTime mta_n2 = mta::mta_n2_step_time(mta_cfg, work);
    const ModelTime mta_pl = mta::mta_pairlist_step_time(mta_cfg, work);
    const ModelTime cell_n2 = cell::cell_n2_step_time(cell_cfg, work);
    const ModelTime cell_pl = cell::cell_pairlist_step_time(cell_cfg, work);
    const ModelTime gpu_n2 = gpu::gpu_n2_step_time(gpu_cfg, pcie_cfg, work);
    const ModelTime gpu_pl =
        gpu::gpu_pairlist_step_time(gpu_cfg, pcie_cfg, work);

    model_table.add_row(
        {std::to_string(n),
         format_fixed(work.list_entries_directed / work.candidates_directed,
                      3),
         format_fixed(work.rebuild_period_steps, 1),
         format_fixed(opt_n2 / opt_pl, 2), format_fixed(mta_n2 / mta_pl, 2),
         format_fixed(cell_n2 / cell_pl, 2), format_fixed(gpu_n2 / gpu_pl, 2)});
    model_csv.push_back(
        {std::to_string(n), format_fixed(work.list_entries_directed, 0),
         format_fixed(work.candidates_directed, 0),
         format_fixed(work.rebuild_period_steps, 2),
         format_fixed(opt_n2.to_milliseconds(), 3),
         format_fixed(opt_pl.to_milliseconds(), 3),
         format_fixed(mta_n2.to_milliseconds(), 3),
         format_fixed(mta_pl.to_milliseconds(), 3),
         format_fixed(cell_n2.to_milliseconds(), 3),
         format_fixed(cell_pl.to_milliseconds(), 3),
         format_fixed(gpu_n2.to_milliseconds(), 3),
         format_fixed(gpu_pl.to_milliseconds(), 3)});
  }

  eb::print_table(model_table);
  std::cout << "The MTA-2 banks the full instruction reduction (irregular\n"
               "gather is free on the flat network); the Opteron keeps most\n"
               "of it while the gather fits in cache; the Cell forfeits its\n"
               "SIMD win to the scalar gather; the GPU's dependent fetches\n"
               "and PCIe floor leave it the least to gain — why the paper's\n"
               "streaming ports recompute distances instead (section 3.4).\n\n";
  eb::print_csv_block("ablation_neighbor_list_model", model_csv);

  // ---- A2c: the 100k-atom build/simulate path on the real host ----
  //
  // The parallel neighbour-list build at scale: per-chunk histogram binning
  // + separable stencil tables ("bin") and the single distance sweep +
  // compaction ("fill"), serial vs the machine's thread pool.  The list
  // entries are bitwise identical either way (asserted by the md test
  // label); only the wall clock may differ.
  std::cout << "\n";
  eb::print_banner("Ablation A2c",
                   "Parallel neighbour-list build + simulate at 100k atoms",
                   "Build phases in ms, 1 thread vs the host pool; 'sim' is\n"
                   "wall ms/step of a 10-step neighbour-list simulation.");

  ThreadPool serial_pool(1);
  ThreadPool& pool = ThreadPool::global();
  Table build_table({"atoms", "bin@1 (ms)", "fill@1 (ms)", "bin@T (ms)",
                     "fill@T (ms)", "build x", "sim ms/step"});
  std::vector<std::vector<std::string>> build_csv = {
      {"atoms", "threads", "bin1_ms", "fill1_ms", "binT_ms", "fillT_ms",
       "build_speedup", "sim_ms_per_step"}};

  for (const std::size_t n : {16384u, 100000u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload w = md::make_lattice_workload(spec);

    auto timed_build = [&](ThreadPool* p, double& bin_ms, double& fill_ms) {
      md::ParallelNeighborListT<double> list(0.3, p);
      // Two builds, report the second: the first pays scratch allocation.
      list.build(w.system.positions(), w.box, lj.cutoff);
      list.invalidate();
      list.build(w.system.positions(), w.box, lj.cutoff);
      bin_ms = list.last_bin_seconds() * 1e3;
      fill_ms = list.last_fill_seconds() * 1e3;
    };
    double bin1 = 0, fill1 = 0, bin_t = 0, fill_t = 0;
    timed_build(&serial_pool, bin1, fill1);
    timed_build(&pool, bin_t, fill_t);

    md::Simulation::Options options;
    options.workload.n_atoms = n;
    options.kernel = md::SimKernel::kNeighborList;
    options.pool = &pool;
    const int sim_steps = 10;
    md::Simulation sim(options);
    const double t_sim = wall_seconds([&] { sim.run(sim_steps); });
    const double sim_ms_step = t_sim * 1e3 / sim_steps;

    const double speedup = (bin1 + fill1) / (bin_t + fill_t);
    build_table.add_row({std::to_string(n), format_fixed(bin1, 2),
                         format_fixed(fill1, 2), format_fixed(bin_t, 2),
                         format_fixed(fill_t, 2), format_fixed(speedup, 2),
                         format_fixed(sim_ms_step, 2)});
    build_csv.push_back({std::to_string(n), std::to_string(pool.size()),
                         format_fixed(bin1, 3), format_fixed(fill1, 3),
                         format_fixed(bin_t, 3), format_fixed(fill_t, 3),
                         format_fixed(speedup, 3),
                         format_fixed(sim_ms_step, 3)});
  }

  eb::print_table(build_table);
  std::cout << "Binning is a stable counting sort (per-chunk histograms +\n"
               "prefix-merge), the stencil population table is three 1-D\n"
               "window passes, and the distance sweep writes disjoint exact\n"
               "scratch ranges — every phase parallelises, so the build no\n"
               "longer caps the atom count the list path can serve.\n\n";
  eb::print_csv_block("ablation_neighbor_list_build", build_csv);
  return 0;
}
