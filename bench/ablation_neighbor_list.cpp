// Ablation A2: on-the-fly distances (the paper's kernel) vs a cell-list
// neighbour search — the cache-friendly technique the paper deliberately
// does NOT use ("We do not employ any optimization technique that has been
// proposed for cache-based systems").
//
// Both kernels produce identical physics (asserted by the test suite); this
// bench contrasts (a) the candidate-pair work each examines and (b) native
// wall-clock on this host, showing what the brute-force choice costs on a
// cache-based machine — context for why the paper's N^2 kernel is the
// interesting porting target in the first place.
#include "bench_util.h"

#include <chrono>
#include <functional>

#include "core/string_util.h"
#include "md/cell_list_kernel.h"
#include "md/reference_kernel.h"
#include "md/verlet_list_kernel.h"
#include "md/workload.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A2",
                   "Brute-force N^2 kernel vs cell-list neighbour search",
                   "One force evaluation per row; 'candidates' is the number\n"
                   "of distance tests performed.");

  Table table({"atoms", "N^2 cand", "cell-list cand", "verlet cand",
               "N^2 (ms)", "cell-list (ms)", "verlet (ms)"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "n2_candidates", "cl_candidates", "vl_candidates", "n2_ms",
       "cl_ms", "vl_ms"}};

  md::LjParams lj;
  for (const std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload w = md::make_lattice_workload(spec);

    md::ReferenceKernel brute;
    md::CellListKernel cells;
    md::VerletListKernel verlet;
    // Warm the Verlet list (the build is amortised over many steps in a
    // real run; time the steady-state evaluation).
    verlet.compute(w.system.positions(), w.box, lj, 1.0);

    md::ForceResult rb, rc, rv;
    const double t_brute = wall_seconds(
        [&] { rb = brute.compute(w.system.positions(), w.box, lj, 1.0); });
    const double t_cells = wall_seconds(
        [&] { rc = cells.compute(w.system.positions(), w.box, lj, 1.0); });
    const double t_verlet = wall_seconds(
        [&] { rv = verlet.compute(w.system.positions(), w.box, lj, 1.0); });

    table.add_row({std::to_string(n), std::to_string(rb.stats.candidates),
                   std::to_string(rc.stats.candidates),
                   std::to_string(rv.stats.candidates),
                   format_fixed(t_brute * 1e3, 2),
                   format_fixed(t_cells * 1e3, 2),
                   format_fixed(t_verlet * 1e3, 2)});
    csv.push_back({std::to_string(n), std::to_string(rb.stats.candidates),
                   std::to_string(rc.stats.candidates),
                   std::to_string(rv.stats.candidates),
                   format_fixed(t_brute * 1e3, 3),
                   format_fixed(t_cells * 1e3, 3),
                   format_fixed(t_verlet * 1e3, 3)});
  }

  eb::print_table(table);
  std::cout << "The cell list turns O(N^2) distance tests into O(N); the\n"
               "Verlet pairlist ('updated every few simulation time steps',\n"
               "section 3.4) trims the candidates further, to the cutoff+skin\n"
               "shell.  Both trade the brute-force kernel's streaming access\n"
               "for the irregular, cache-unfriendly pattern the paper\n"
               "describes — the trade the emerging architectures attack from\n"
               "the other side.\n\n";
  eb::print_csv_block("ablation_neighbor_list", csv);
  return 0;
}
