// Ablation A3: single vs double precision.
//
// The paper runs Cell/GPU in single precision and flags double-precision
// support as the outstanding issue in its conclusions.  This bench
// quantifies the numerical side of that trade: how far single-precision
// trajectories and energies drift from the double-precision reference over
// the paper's 10-step run, across atom counts.
#include "bench_util.h"

#include <cmath>

#include "core/string_util.h"
#include "md/backend.h"
#include "md/integrator.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A3", "Single vs double precision MD",
                   "10 steps; drift is measured against the double-precision\n"
                   "trajectory from the identical initial state.");

  Table table({"atoms", "max |dr|", "rel PE error", "rel KE error"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "max_displacement", "rel_pe_err", "rel_ke_err"}};

  for (const std::size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload dw = md::make_lattice_workload(spec);
    md::ParticleSystemF fsys = dw.system.cast<float>();
    const md::PeriodicBoxF fbox(static_cast<float>(dw.box.edge()));

    md::LjParams lj;
    const auto ljf = lj.cast<float>();

    md::ReferenceKernel dk;
    md::ReferenceKernelF fk;
    md::VelocityVerlet dvv(0.005);
    md::VelocityVerletF fvv(0.005f);

    dvv.prime(dw.system, dw.box, lj, dk);
    fvv.prime(fsys, fbox, ljf, fk);
    md::StepEnergiesT<double> de{};
    md::StepEnergiesT<float> fe{};
    for (int s = 0; s < 10; ++s) {
      de = dvv.step(dw.system, dw.box, lj, dk);
      fe = fvv.step(fsys, fbox, ljf, fk);
    }

    double max_dr = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3d delta = dw.box.min_image(
          dw.system.positions()[i] -
          vec_cast<double>(fsys.positions()[i]));
      max_dr = std::max(max_dr, length(delta));
    }
    const double pe_err =
        std::fabs(fe.potential - de.potential) / std::fabs(de.potential);
    const double ke_err = std::fabs(fe.kinetic - de.kinetic) / de.kinetic;

    table.add_row({std::to_string(n), format_auto(max_dr),
                   format_auto(pe_err), format_auto(ke_err)});
    csv.push_back({std::to_string(n), format_auto(max_dr),
                   format_auto(pe_err), format_auto(ke_err)});
  }

  eb::print_table(table);
  std::cout << "Over the paper's 10-step window, single precision tracks the\n"
               "double-precision trajectory to ~1e-3 reduced units — accurate\n"
               "enough for the paper's performance study, while the chaotic\n"
               "dynamics would amplify the gap over long production runs\n"
               "(the conclusions' double-precision concern).\n\n";
  eb::print_csv_block("ablation_precision", csv);
  return 0;
}
