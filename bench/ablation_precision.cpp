// Ablation A3: single vs double precision.
//
// The paper runs Cell/GPU in single precision and flags double-precision
// support as the outstanding issue in its conclusions.  This bench
// quantifies the numerical side of that trade: how far single-precision
// trajectories and energies drift from the double-precision reference over
// the paper's 10-step run, across atom counts.
#include "bench_util.h"

#include <cmath>

#include "core/string_util.h"
#include "md/backend.h"
#include "md/integrator.h"
#include "md/observables.h"
#include "md/parallel_neighbor.h"
#include "md/reference_kernel.h"
#include "md/single_precision.h"
#include "md/workload.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A3", "Single vs double precision MD",
                   "10 steps; drift is measured against the double-precision\n"
                   "trajectory from the identical initial state.");

  Table table({"atoms", "max |dr|", "rel PE error", "rel KE error"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "max_displacement", "rel_pe_err", "rel_ke_err"}};

  for (const std::size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::Workload dw = md::make_lattice_workload(spec);
    md::ParticleSystemF fsys = dw.system.cast<float>();
    const md::PeriodicBoxF fbox(static_cast<float>(dw.box.edge()));

    md::LjParams lj;
    const auto ljf = lj.cast<float>();

    md::ReferenceKernel dk;
    md::ReferenceKernelF fk;
    md::VelocityVerlet dvv(0.005);
    md::VelocityVerletF fvv(0.005f);

    dvv.prime(dw.system, dw.box, lj, dk);
    fvv.prime(fsys, fbox, ljf, fk);
    md::StepEnergiesT<double> de{};
    md::StepEnergiesT<float> fe{};
    for (int s = 0; s < 10; ++s) {
      de = dvv.step(dw.system, dw.box, lj, dk);
      fe = fvv.step(fsys, fbox, ljf, fk);
    }

    double max_dr = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3d delta = dw.box.min_image(
          dw.system.positions()[i] -
          vec_cast<double>(fsys.positions()[i]));
      max_dr = std::max(max_dr, length(delta));
    }
    const double pe_err =
        std::fabs(fe.potential - de.potential) / std::fabs(de.potential);
    const double ke_err = std::fabs(fe.kinetic - de.kinetic) / de.kinetic;

    table.add_row({std::to_string(n), format_auto(max_dr),
                   format_auto(pe_err), format_auto(ke_err)});
    csv.push_back({std::to_string(n), format_auto(max_dr),
                   format_auto(pe_err), format_auto(ke_err)});
  }

  eb::print_table(table);
  std::cout << "Over the paper's 10-step window, single precision tracks the\n"
               "double-precision trajectory to ~1e-3 reduced units — accurate\n"
               "enough for the paper's performance study, while the chaotic\n"
               "dynamics would amplify the gap over long production runs\n"
               "(the conclusions' double-precision concern).\n\n";
  eb::print_csv_block("ablation_precision", csv);

  // Part 2: the same drift question for the host fast path — the
  // neighbour-list kernel behind --precision sp / mixed.  All three runs
  // integrate the identical initial state in full double precision; only
  // the force kernel's lane arithmetic differs, so the gap isolates the
  // precision seam rather than integrator rounding.
  std::cout << "\nNeighbour-list kernel, --precision sp / mixed vs dp\n"
               "(double integrator throughout; 10 steps):\n\n";
  Table ltable({"atoms", "sp max |dr|", "sp rel PE", "mixed max |dr|",
                "mixed rel PE"});
  std::vector<std::vector<std::string>> lcsv = {
      {"atoms", "sp_max_displacement", "sp_rel_pe_err", "mixed_max_displacement",
       "mixed_rel_pe_err"}};

  for (const std::size_t n : {1024u, 4096u}) {
    md::WorkloadSpec spec;
    spec.n_atoms = n;
    md::LjParams lj;

    md::Workload dp = md::make_lattice_workload(spec);
    md::Workload sp = md::make_lattice_workload(spec);
    md::Workload mx = md::make_lattice_workload(spec);

    md::NeighborListKernel dk;
    md::SingleNeighborListKernel sk;
    md::NeighborListKernelMixed mk;
    md::VelocityVerlet dvv(0.005), svv(0.005), mvv(0.005);

    dvv.prime(dp.system, dp.box, lj, dk);
    svv.prime(sp.system, sp.box, lj, sk);
    mvv.prime(mx.system, mx.box, lj, mk);
    md::StepEnergies de{}, se{}, me{};
    for (int s = 0; s < 10; ++s) {
      de = dvv.step(dp.system, dp.box, lj, dk);
      se = svv.step(sp.system, sp.box, lj, sk);
      me = mvv.step(mx.system, mx.box, lj, mk);
    }

    double sp_dr = 0.0, mx_dr = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sp_dr = std::max(sp_dr, length(dp.box.min_image(
                                  dp.system.positions()[i] -
                                  sp.system.positions()[i])));
      mx_dr = std::max(mx_dr, length(dp.box.min_image(
                                  dp.system.positions()[i] -
                                  mx.system.positions()[i])));
    }
    const double sp_pe =
        std::fabs(se.potential - de.potential) / std::fabs(de.potential);
    const double mx_pe =
        std::fabs(me.potential - de.potential) / std::fabs(de.potential);

    ltable.add_row({std::to_string(n), format_auto(sp_dr), format_auto(sp_pe),
                    format_auto(mx_dr), format_auto(mx_pe)});
    lcsv.push_back({std::to_string(n), format_auto(sp_dr), format_auto(sp_pe),
                    format_auto(mx_dr), format_auto(mx_pe)});
  }

  eb::print_table(ltable);
  std::cout << "The list kernel's sp and mixed modes stay within the same\n"
               "~1e-6 PE band as the N^2 float ablation above; mixed buys\n"
               "float-width lanes while the FP64 reduction keeps the energy\n"
               "ledger double-clean (tests/trajectory asserts the bounds).\n\n";
  eb::print_csv_block("ablation_precision_list", lcsv);
  return 0;
}
