// Ablation A4: minimum-image strategies on the scalar Opteron model.
//
// The paper's baseline searches the 27 neighbouring unit cells per pair; a
// round- or copysign-based reflection computes the same image in a handful
// of operations.  This bench prices all four strategies on the calibrated
// Opteron model, showing how much of the baseline's runtime is the image
// search itself — the same work the Cell port attacks with SIMD in Fig 5.
#include "bench_util.h"

#include "core/string_util.h"
#include "cpu/opteron_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A4",
                   "Minimum-image strategy cost on the Opteron model",
                   "2048 atoms, 10 steps; identical physics in every row.");

  Table table({"strategy", "model (s)", "rel to search27"});
  std::vector<std::vector<std::string>> csv = {{"strategy", "model_s"}};

  const md::RunConfig cfg = eb::paper_run(2048);
  double base = 0.0;
  for (auto strategy :
       {md::MinImageStrategy::kSearch27, md::MinImageStrategy::kBranchy,
        md::MinImageStrategy::kCopysign, md::MinImageStrategy::kRound}) {
    opteron::OpteronConfig config;
    config.strategy = strategy;
    const auto r = opteron::OpteronBackend(config).run(cfg);
    const double t = r.device_time.to_seconds();
    if (strategy == md::MinImageStrategy::kSearch27) base = t;
    table.add_row({md::to_string(strategy), format_fixed(t, 3),
                   format_fixed(t / base, 3)});
    csv.push_back({md::to_string(strategy), format_fixed(t, 4)});
  }

  eb::print_table(table);
  std::cout << "The 27-image search dominates the baseline kernel's runtime;\n"
               "the Table-1 Opteron row (4.084 s) is only reachable with it,\n"
               "which is the code the paper ported to all three devices.\n\n";
  eb::print_csv_block("ablation_min_image", csv);
  return 0;
}
