// Figure 7 reproduction: GPU (GeForce 7900GTX model) vs the 2.2 GHz Opteron
// across atom counts, 10 steps, per-step PCIe transfers included and the
// one-time GPU startup excluded — exactly the paper's accounting.
//
// Shape targets: the GPU loses at small atom counts (fixed per-step
// dispatch/readback costs), crosses over in the hundreds of atoms, and is
// "almost 6x faster" at 2048.
#include "bench_util.h"

#include "core/string_util.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Figure 7", "Performance results on GPU vs CPU",
                   "Runtime for 10 steps.  Counts above 2048 use the mean\n"
                   "steady-state step time of a 2-step run x 10 (per-step\n"
                   "model time is constant).");

  Table table({"atoms", "Opteron (s)", "GPU (s)", "GPU speedup"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "cpu_s", "gpu_s", "speedup"}};

  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    // Full 10 steps where cheap; extrapolate from 2 steady-state steps at
    // the large end.
    const int steps = (n <= 2048) ? 10 : 2;
    const md::RunConfig cfg = eb::paper_run(n, steps);
    const md::RunResult cpu = opteron::OpteronBackend().run(cfg);
    const md::RunResult gpu = gpu::GpuBackend().run(cfg);
    const double t_cpu = (steps == 10) ? cpu.device_time.to_seconds()
                                       : eb::ten_step_estimate_seconds(cpu);
    const double t_gpu = (steps == 10) ? gpu.device_time.to_seconds()
                                       : eb::ten_step_estimate_seconds(gpu);
    table.add_row({std::to_string(n), format_fixed(t_cpu, 3),
                   format_fixed(t_gpu, 3), format_fixed(t_cpu / t_gpu, 2) + "x"});
    csv.push_back({std::to_string(n), format_fixed(t_cpu, 4),
                   format_fixed(t_gpu, 4), format_fixed(t_cpu / t_gpu, 3)});
  }

  eb::print_table(table);
  std::cout << "Paper claims: GPU slower at very small atom counts (per-step\n"
               "transfer costs), 'almost 6x faster than the CPU' at 2048.\n\n";
  eb::print_csv_block("fig7", csv);
  return 0;
}
