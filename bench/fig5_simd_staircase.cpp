// Figure 5 reproduction: runtime of the acceleration computation for 2048
// atoms on a single SPE, across the cumulative SIMD optimisation stages.
//
// Paper's narrative targets: copysign gives a small speedup; SIMD unit-cell
// reflection runs >1.5x faster than the original; SIMD direction and length
// add ~21% and ~15%; SIMD acceleration adds only ~3% (few pairs interact).
#include "bench_util.h"

#include "cellsim/cell_md_app.h"
#include "core/string_util.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner(
      "Figure 5", "SIMD optimization for the MD kernel (1 SPE, 2048 atoms)",
      "Runtime of the acceleration computation function over the paper's\n"
      "10-step run.  'rel' is relative to the original port; 'step gain' is\n"
      "the improvement over the previous stage (paper: small, >1.5x, 21%,\n"
      "15%, 3%).");

  const md::RunConfig cfg = eb::paper_run(2048);

  Table table({"variant", "accel runtime (s)", "rel", "step gain"});
  std::vector<std::vector<std::string>> csv = {
      {"variant", "accel_runtime_s", "relative", "step_gain_pct"}};

  double original = 0.0;
  double previous = 0.0;
  for (auto variant : cell::kAllSimdVariants) {
    cell::CellRunOptions options;
    options.n_spes = 1;
    options.variant = variant;
    const md::RunResult r = cell::CellBackend(options).run(cfg);
    const double t = r.breakdown_component("spe_compute").to_seconds();
    if (variant == cell::SimdVariant::kOriginal) original = t;
    const double gain_pct =
        (previous > 0.0) ? (previous / t - 1.0) * 100.0 : 0.0;
    table.add_row({to_string(variant), format_fixed(t, 3),
                   format_fixed(t / original, 3),
                   previous > 0.0 ? format_fixed(gain_pct, 1) + "%" : "-"});
    csv.push_back({to_string(variant), format_fixed(t, 4),
                   format_fixed(t / original, 4), format_fixed(gain_pct, 2)});
    previous = t;
  }

  eb::print_table(table);
  std::cout << "Paper claims: copysign 'small speedup'; SIMD reflection 'over\n"
               "1.5x faster than the original'; then 21% and 15%; the final\n"
               "acceleration SIMDisation only ~3% because so few tested\n"
               "atoms interact.\n\n";
  eb::print_csv_block("fig5", csv);
  return 0;
}
