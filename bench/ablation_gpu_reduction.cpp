// Ablation A1: the paper's potential-energy readback trick vs the rejected
// multi-pass GPU reduction.
//
// "One option is to introduce one or more additional passes ... called a
// reduction operation.  However, this method introduces significant
// overheads.  Instead ... it makes more sense to simply read back each
// atom's contribution to PE as well and sum them in linear time on the
// CPU."  This bench quantifies that design decision.
#include "bench_util.h"

#include "core/string_util.h"
#include "gpusim/gpu_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A1",
                   "GPU potential-energy strategy: readback-in-w vs reduction",
                   "Runtime for 10 steps across atom counts.");

  Table table({"atoms", "readback-in-w (s)", "gpu reduction (s)", "overhead"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "readback_s", "reduction_s"}};

  for (const std::size_t n : {256u, 512u, 1024u, 2048u}) {
    const md::RunConfig cfg = eb::paper_run(n, 10);
    gpu::GpuRunOptions readback;
    gpu::GpuRunOptions reduction;
    reduction.pe_strategy = gpu::PeStrategy::kGpuReduction;
    const double t_rb =
        gpu::GpuBackend(readback).run(cfg).device_time.to_seconds();
    const double t_red =
        gpu::GpuBackend(reduction).run(cfg).device_time.to_seconds();
    table.add_row({std::to_string(n), format_fixed(t_rb, 3),
                   format_fixed(t_red, 3),
                   "+" + format_fixed((t_red / t_rb - 1.0) * 100.0, 0) + "%"});
    csv.push_back({std::to_string(n), format_fixed(t_rb, 4),
                   format_fixed(t_red, 4)});
  }

  eb::print_table(table);
  std::cout << "The reduction pays log4(N) extra pass dispatches plus an\n"
               "extra synchronised readback every step — the 'significant\n"
               "overheads' the paper avoids, since the acceleration readback\n"
               "carries the PE contributions for free in the w component.\n\n";
  eb::print_csv_block("ablation_gpu_reduction", csv);
  return 0;
}
