// Figure 8 reproduction: fully vs partially multithreaded MD kernel on the
// MTA-2 model across atom counts.
//
// Partially multithreaded = the compiler refused to parallelise the N^2
// force loop (reduction dependence): it runs on one stream at a full
// pipeline round-trip per instruction.  Fully multithreaded = reduction
// moved inside the loop body + no-dependence pragma.  The absolute gap
// grows with the atom count, the paper's point about keeping the machine
// saturated.
#include "bench_util.h"

#include "core/string_util.h"
#include "mtasim/mta_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Figure 8",
                   "Fully vs partially multithreaded MD kernel (MTA-2)",
                   "Runtime for 10 steps (extrapolated from 2 steady-state\n"
                   "steps; per-step model time is constant).");

  Table table({"atoms", "fully MT (s)", "partially MT (s)", "gap (s)", "ratio"});
  std::vector<std::vector<std::string>> csv = {
      {"atoms", "full_s", "partial_s"}};

  for (const std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    const md::RunConfig cfg = eb::paper_run(n, 2);
    const auto full =
        mta::MtaBackend(mta::ThreadingMode::kFullyMultithreaded).run(cfg);
    const auto part =
        mta::MtaBackend(mta::ThreadingMode::kPartiallyMultithreaded).run(cfg);
    const double t_full = eb::ten_step_estimate_seconds(full);
    const double t_part = eb::ten_step_estimate_seconds(part);
    table.add_row({std::to_string(n), format_fixed(t_full, 2),
                   format_fixed(t_part, 2), format_fixed(t_part - t_full, 2),
                   format_fixed(t_part / t_full, 1) + "x"});
    csv.push_back({std::to_string(n), format_fixed(t_full, 3),
                   format_fixed(t_part, 3)});
  }

  eb::print_table(table);
  std::cout << "Paper claims: the fully multithreaded version is significantly\n"
               "faster and 'the performance difference increases with the\n"
               "increase in the number of atoms'.\n\n";
  eb::print_csv_block("fig8", csv);
  return 0;
}
