// Ablation A5: double precision on the Cell — the paper's "outstanding
// issue" quantified.
//
// "Regrettably, these SPEs are not optimized for double-precision floating
// point calculations, making the Cell an uncertain target for scientific
// applications in the minds of many developers."  The first-generation SPE
// runs DP at ~1/14th of its SP throughput; this bench shows what that does
// to Table 1's 5x advantage.
#include "bench_util.h"

#include "cellsim/cell_dp.h"
#include "cellsim/cell_md_app.h"
#include "core/string_util.h"
#include "cpu/opteron_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Ablation A5",
                   "Cell double precision vs single precision (2048 atoms)",
                   "10 steps.  The Opteron row is double precision; the Cell\n"
                   "SP rows are the paper's configuration.");

  const md::RunConfig cfg = eb::paper_run(2048);

  Table table({"configuration", "precision", "model (s)", "vs Opteron"});
  std::vector<std::vector<std::string>> csv = {
      {"configuration", "precision", "model_s"}};

  const double opteron =
      opteron::OpteronBackend().run(cfg).device_time.to_seconds();
  table.add_row({"Opteron 2.2 GHz", "double", format_fixed(opteron, 3), "1.00x"});
  csv.push_back({"opteron", "double", format_fixed(opteron, 4)});

  for (int n_spes : {1, 8}) {
    cell::CellRunOptions sp;
    sp.n_spes = n_spes;
    const double t_sp =
        cell::CellBackend(sp).run(cfg).device_time.to_seconds();
    const double t_dp =
        cell::CellDpBackend(n_spes).run(cfg).device_time.to_seconds();
    table.add_row({"Cell, " + std::to_string(n_spes) + " SPE", "single",
                   format_fixed(t_sp, 3),
                   format_fixed(opteron / t_sp, 2) + "x"});
    table.add_row({"Cell, " + std::to_string(n_spes) + " SPE", "double",
                   format_fixed(t_dp, 3),
                   format_fixed(opteron / t_dp, 2) + "x"});
    csv.push_back({"cell_" + std::to_string(n_spes) + "spe", "single",
                   format_fixed(t_sp, 4)});
    csv.push_back({"cell_" + std::to_string(n_spes) + "spe", "double",
                   format_fixed(t_dp, 4)});
  }

  eb::print_table(table);
  std::cout << "In double precision the SPEs lose their single-precision\n"
               "throughput edge: even all 8 together barely compete with the\n"
               "host Opteron — the reason the paper calls double-precision\n"
               "support the outstanding issue for these devices.\n\n";
  eb::print_csv_block("ablation_cell_dp", csv);
  return 0;
}
