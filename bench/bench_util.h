// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure from the paper's evaluation
// section: it runs the calibrated device models on the paper's workload,
// prints the same rows/series the paper reports (with the paper's values
// alongside where the paper states them), and appends a machine-readable
// CSV block for plotting.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/table.h"
#include "md/backend.h"

namespace emdpa::bench {

inline void print_banner(const std::string& id, const std::string& title,
                         const std::string& notes) {
  std::cout << "==========================================================\n"
            << id << ": " << title << "\n"
            << "==========================================================\n";
  if (!notes.empty()) std::cout << notes << "\n";
  std::cout << "\n";
}

inline void print_table(const Table& table) { std::cout << table.to_string() << "\n"; }

/// Emit a CSV mirror of the results between marker lines, for plotting.
inline void print_csv_block(const std::string& id,
                            const std::vector<std::vector<std::string>>& rows) {
  std::cout << "--- csv:" << id << " ---\n";
  CsvWriter csv(std::cout);
  for (const auto& row : rows) csv.write_row(row);
  std::cout << "--- end csv ---\n\n";
}

/// The paper's standard experiment: N atoms, 10 velocity-Verlet steps of
/// the LJ fluid.
inline md::RunConfig paper_run(std::size_t n_atoms, int steps = 10) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = n_atoms;
  cfg.steps = steps;
  return cfg;
}

/// Estimate the 10-step runtime from a short (>= 2 step) run.  The first
/// step carries any one-time costs (e.g. persistent SPE thread launches),
/// so the estimate is step0 + 9 x mean(steady-state steps) — which equals a
/// true 10-step run when per-step model time is constant, as it is for
/// these simulators.  Used by the sweep benches at large atom counts where
/// simulating all ten steps is wall-clock-wasteful.
inline double ten_step_estimate_seconds(const md::RunResult& result) {
  if (result.step_times.empty()) return result.device_time.to_seconds() * 10.0;
  if (result.step_times.size() == 1) {
    return result.step_times[0].to_seconds() * 10.0;
  }
  ModelTime steady;
  for (std::size_t s = 1; s < result.step_times.size(); ++s) {
    steady += result.step_times[s];
  }
  const double mean_steady =
      steady.to_seconds() / static_cast<double>(result.step_times.size() - 1);
  return result.step_times[0].to_seconds() + 9.0 * mean_steady;
}

}  // namespace emdpa::bench
