// Ablation A7: predication (the shader the paper's era used) vs Shader
// Model 3.0 dynamic branching for the cutoff test.
//
// Branching could in principle skip the LJ polynomial for the ~97% of
// candidate pairs outside the cutoff — but GeForce-class hardware executes
// fragment *batches* in lock-step: iteration j takes the LJ path if ANY
// fragment in the batch interacts with atom j.  With interacting pairs
// scattered through the gather loop, realistic batch sizes execute the LJ
// block almost every iteration and still pay per-iteration branch overhead.
#include "bench_util.h"

#include "core/string_util.h"
#include "gpusim/branch_model.h"
#include "gpusim/gpu_device.h"
#include "md/workload.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner(
      "Ablation A7", "GPU cutoff handling: predication vs dynamic branching",
      "One acceleration pass, 2048 atoms.  'LJ taken' is the fraction of\n"
      "batch-iterations that execute the guarded LJ block.");

  md::WorkloadSpec spec;
  spec.n_atoms = 2048;
  md::Workload w = md::make_lattice_workload(spec);
  const md::PeriodicBoxF box(static_cast<float>(w.box.edge()));
  const auto lj = md::LjParams{}.cast<float>();

  std::vector<Vec4f> positions;
  positions.reserve(w.system.size());
  for (const auto& p : w.system.positions()) {
    positions.emplace_back(vec_cast<float>(w.box.wrap(p)), 0.0f);
  }

  const gpu::GpuDeviceConfig dev;
  const auto price = [&](const gpu::GpuWork& work) {
    const double cycles =
        static_cast<double>(work.alu_vec4) * dev.cycles_per_vec4_op +
        static_cast<double>(work.alu_scalar) * dev.cycles_per_scalar_op +
        static_cast<double>(work.fetches) * dev.cycles_per_fetch;
    return cycles / dev.pixel_pipelines / dev.clock_hz;
  };

  // Predicated baseline: every candidate pays prologue + LJ, no branch.
  const gpu::MdShaderOpSplit split;
  gpu::GpuWork predicated;
  const auto n = positions.size();
  predicated.fetches = n * n;
  predicated.alu_vec4 = n * n * (split.prologue_vec4 + split.lj_vec4);
  predicated.alu_scalar = n * n * (split.prologue_scalar + split.lj_scalar);
  const double t_pred = price(predicated);

  Table table({"strategy", "batch", "pass time (ms)", "LJ taken", "vs predicated"});
  std::vector<std::vector<std::string>> csv = {
      {"strategy", "batch", "pass_ms", "lj_taken_fraction"}};
  table.add_row({"predicated (paper)", "-", format_fixed(t_pred * 1e3, 2),
                 "100%", "1.00x"});
  csv.push_back({"predicated", "0", format_fixed(t_pred * 1e3, 3), "1.0"});

  for (const std::size_t batch : {1u, 16u, 64u, 256u, 1024u, 2048u}) {
    const auto est =
        gpu::estimate_branching_pass_work(positions, box, lj, batch);
    const double t = price(est.work);
    table.add_row({"dynamic branch", std::to_string(batch),
                   format_fixed(t * 1e3, 2),
                   format_fixed(100.0 * est.taken_fraction(), 1) + "%",
                   format_fixed(t / t_pred, 2) + "x"});
    csv.push_back({"branch", std::to_string(batch), format_fixed(t * 1e3, 3),
                   format_fixed(est.taken_fraction(), 4)});
  }

  eb::print_table(table);
  std::cout << "Branching only wins at impossibly fine batches; GeForce-7\n"
               "class hardware evaluated fragments in batches of ~1000, where\n"
               "the guarded block executes most iterations anyway and the\n"
               "per-iteration branch overhead eats the remainder — so\n"
               "predication is the right call, which is how the era's GPGPU\n"
               "kernels (and ours) are written.\n\n";
  eb::print_csv_block("ablation_gpu_branching", csv);
  return 0;
}
