// Ablation A6: projecting the MD kernel onto the Cray XMT — the paper's
// stated future work ("We anticipate significant performance gains from the
// upcoming XMT technology"), including the locality caveat the paper
// raises: the XMT gives up the MTA-2's uniform memory latency, so naive
// data placement hits a remote-reference bandwidth wall as the machine
// grows.
#include "bench_util.h"

#include "core/string_util.h"
#include "mtasim/mta_backend.h"
#include "mtasim/xmt_backend.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner(
      "Ablation A6", "XMT projection vs MTA-2 (2048 atoms)",
      "10 steps (extrapolated from 2 steady-state steps).  The XMT rows use\n"
      "naive round-robin placement: remote fraction (P-1)/P.");

  const md::RunConfig cfg = eb::paper_run(2048, 2);
  const double mta2 =
      eb::ten_step_estimate_seconds(mta::MtaBackend().run(cfg));

  Table table({"machine", "processors", "model (s)", "speedup vs MTA-2 1p"});
  std::vector<std::vector<std::string>> csv = {
      {"machine", "processors", "model_s"}};

  table.add_row({"MTA-2", "1", format_fixed(mta2, 2), "1.00x"});
  csv.push_back({"mta2", "1", format_fixed(mta2, 3)});

  for (int p : {1, 2, 4, 8, 16}) {
    mta::XmtConfig xc;
    xc.n_processors = p;
    const double t =
        eb::ten_step_estimate_seconds(mta::XmtBackend(xc).run(cfg));
    table.add_row({"XMT", std::to_string(p), format_fixed(t, 2),
                   format_fixed(mta2 / t, 2) + "x"});
    csv.push_back({"xmt", std::to_string(p), format_fixed(t, 3)});
  }

  eb::print_table(table);
  std::cout << "One XMT processor is ~2.5x the MTA-2 (clock).  Adding\n"
               "processors under naive placement runs into the remote-\n"
               "reference budget: speedup saturates once the network, not\n"
               "the issue pipelines, is the bottleneck — the locality\n"
               "consideration the paper flags for XMT programming.\n\n";
  eb::print_csv_block("ablation_xmt", csv);
  return 0;
}
