// Figure 6 reproduction: SPE thread-launch overhead on the MD run.
//
// Four configurations: {1, 8} SPEs x {respawn every time step, launch only
// on the first step + mailbox signalling}.  The paper's bars show total
// runtime with the launch-overhead share; respawning with 8 SPEs is
// launch-dominated ("only about 1.5x faster" than one SPE), the persistent
// version restores ~4.5x scaling.
#include "bench_util.h"

#include "cellsim/cell_md_app.h"
#include "core/string_util.h"

int main() {
  using namespace emdpa;
  namespace eb = emdpa::bench;

  eb::print_banner("Figure 6",
                   "SPE launch overhead on MD (2048 atoms, 10 steps)",
                   "Total runtime vs the share spent launching SPE threads.");

  const md::RunConfig cfg = eb::paper_run(2048);

  Table table({"configuration", "total (s)", "launch overhead (s)", "launch %"});
  std::vector<std::vector<std::string>> csv = {
      {"mode", "n_spes", "total_s", "launch_s"}};

  double t_1spe_persistent = 0, t_8spe_persistent = 0, t_8spe_respawn = 0;

  for (auto mode : {cell::LaunchMode::kRespawnEveryStep,
                    cell::LaunchMode::kPersistent}) {
    for (int n_spes : {1, 8}) {
      cell::CellRunOptions options;
      options.n_spes = n_spes;
      options.launch_mode = mode;
      const md::RunResult r = cell::CellBackend(options).run(cfg);
      const double total = r.device_time.to_seconds();
      const double launch = r.breakdown_component("spe_launch").to_seconds();
      table.add_row({std::to_string(n_spes) + " SPE, " + to_string(mode),
                     format_fixed(total, 3), format_fixed(launch, 3),
                     format_fixed(100.0 * launch / total, 1) + "%"});
      csv.push_back({to_string(mode), std::to_string(n_spes),
                     format_fixed(total, 4), format_fixed(launch, 4)});
      if (mode == cell::LaunchMode::kPersistent && n_spes == 1)
        t_1spe_persistent = total;
      if (mode == cell::LaunchMode::kPersistent && n_spes == 8)
        t_8spe_persistent = total;
      if (mode == cell::LaunchMode::kRespawnEveryStep && n_spes == 8)
        t_8spe_respawn = total;
    }
  }

  eb::print_table(table);
  std::cout << "8-SPE speedup over 1 SPE, respawning:  "
            << format_fixed(t_1spe_persistent / t_8spe_respawn, 2)
            << "x   (paper: 'only about 1.5x')\n"
            << "8-SPE speedup over 1 SPE, persistent:  "
            << format_fixed(t_1spe_persistent / t_8spe_persistent, 2)
            << "x   (paper: '4.5x faster')\n\n";
  eb::print_csv_block("fig6", csv);
  return 0;
}
